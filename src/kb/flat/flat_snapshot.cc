#include "kb/flat/flat_snapshot.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "kb/flat/flat_hash.h"
#include "kb/flat/flat_layout.h"
#include "kb/flat/mmap_file.h"
#include "util/check.h"
#include "util/lifetime.h"
#include "util/serialize.h"

namespace aida::kb::flat {

namespace {

constexpr uint32_t kMaxSectionId =
    static_cast<uint32_t>(SectionId::kOutLinkTargets);
constexpr uint64_t kSectionTotal = kMaxSectionId;  // ids are dense from 1

// All counts an attacker could inflate are capped well below any point
// where (count + 1) * 8 or slot arithmetic could overflow.
constexpr uint64_t kMaxCount = uint64_t{1} << 31;

static_assert(std::is_trivially_copyable_v<NameCandidate>);

#define AIDA_FLAT_RETURN_IF_ERROR(expr)            \
  do {                                             \
    util::Status flat_status_ = (expr);            \
    if (!flat_status_.ok()) return flat_status_;   \
  } while (0)

util::Status Corrupt(const std::string& what) {
  return util::Status::InvalidArgument("flat snapshot: " + what);
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct SectionBlob {
  SectionId id;
  const void* data;
  uint64_t size;
};

template <typename T>
uint64_t VecBytes(const std::vector<T>& v) {
  return v.size() * sizeof(T);
}

}  // namespace

std::string SerializeFlatSnapshot(const KnowledgeBase& kb) {
  const TypeTaxonomy& taxonomy = kb.taxonomy();
  const EntityRepository& entities = kb.entities();
  const Dictionary::FlatView& dict = kb.dictionary().flat_view();
  const KeyphraseStore::FlatView& kp = kb.keyphrases().flat_view();
  const LinkGraph::FlatView& links = kb.links().flat_view();

  const uint64_t entity_count = entities.size();
  AIDA_CHECK(kp.entity_count == entity_count,
             "keyphrase store covers %llu entities, repository has %llu",
             static_cast<unsigned long long>(kp.entity_count),
             static_cast<unsigned long long>(entity_count));
  AIDA_CHECK(links.entity_count == entity_count,
             "link graph covers %llu entities, repository has %llu",
             static_cast<unsigned long long>(links.entity_count),
             static_cast<unsigned long long>(entity_count));

  // Taxonomy and entity repository are not flattened in memory (they are
  // small and keep reference-returning APIs); lay them out here.
  std::vector<uint64_t> tax_name_offsets{0};
  std::string tax_name_pool;
  std::vector<TypeId> tax_parents;
  for (TypeId t = 0; t < taxonomy.size(); ++t) {
    tax_name_pool.append(taxonomy.TypeName(t));
    tax_name_offsets.push_back(tax_name_pool.size());
    tax_parents.push_back(taxonomy.Parent(t));
  }

  std::vector<uint64_t> entity_name_offsets{0};
  std::string entity_name_pool;
  std::vector<uint64_t> entity_anchor_counts;
  std::vector<uint64_t> entity_type_offsets{0};
  std::vector<TypeId> entity_types;
  for (EntityId e = 0; e < entity_count; ++e) {
    const Entity& entity = entities.Get(e);
    entity_name_pool.append(entity.canonical_name);
    entity_name_offsets.push_back(entity_name_pool.size());
    entity_anchor_counts.push_back(entity.anchor_count);
    entity_types.insert(entity_types.end(), entity.types.begin(),
                        entity.types.end());
    entity_type_offsets.push_back(entity_types.size());
  }

  MetaSection meta;
  meta.entity_count = entity_count;
  meta.taxonomy_count = taxonomy.size();
  meta.word_count = kp.word_count;
  meta.phrase_count = kp.phrase_count;
  meta.collection_size = kp.collection_size;
  meta.exact_name_count = dict.exact.name_count;
  meta.folded_name_count = dict.folded.name_count;
  meta.link_count = links.out_offsets[links.entity_count];

  std::vector<SectionBlob> sections;
  sections.reserve(kSectionTotal);
  auto add = [&sections](SectionId id, const void* data, uint64_t size) {
    sections.push_back({id, data, size});
  };
  auto add_dict_table = [&](const Dictionary::TableView& table,
                            SectionId name_offsets, SectionId name_pool,
                            SectionId ranges, SectionId candidates,
                            SectionId slots) {
    const uint64_t n = table.name_count;
    add(name_offsets, table.name_offsets, (n + 1) * sizeof(uint64_t));
    add(name_pool, table.name_pool, table.name_offsets[n]);
    add(ranges, table.candidate_offsets, (n + 1) * sizeof(uint64_t));
    add(candidates, table.candidates,
        table.candidate_offsets[n] * sizeof(NameCandidate));
    add(slots, table.hash.slots, table.hash.capacity * sizeof(uint32_t));
  };

  add(SectionId::kMeta, &meta, sizeof(meta));
  add(SectionId::kTaxonomyNameOffsets, tax_name_offsets.data(),
      VecBytes(tax_name_offsets));
  add(SectionId::kTaxonomyNamePool, tax_name_pool.data(),
      tax_name_pool.size());
  add(SectionId::kTaxonomyParents, tax_parents.data(), VecBytes(tax_parents));
  add(SectionId::kEntityNameOffsets, entity_name_offsets.data(),
      VecBytes(entity_name_offsets));
  add(SectionId::kEntityNamePool, entity_name_pool.data(),
      entity_name_pool.size());
  add(SectionId::kEntityAnchorCounts, entity_anchor_counts.data(),
      VecBytes(entity_anchor_counts));
  add(SectionId::kEntityTypeOffsets, entity_type_offsets.data(),
      VecBytes(entity_type_offsets));
  add(SectionId::kEntityTypes, entity_types.data(), VecBytes(entity_types));
  add_dict_table(dict.exact, SectionId::kDictExactNameOffsets,
                 SectionId::kDictExactNamePool, SectionId::kDictExactRanges,
                 SectionId::kDictExactCandidates, SectionId::kDictExactSlots);
  add_dict_table(dict.folded, SectionId::kDictFoldedNameOffsets,
                 SectionId::kDictFoldedNamePool, SectionId::kDictFoldedRanges,
                 SectionId::kDictFoldedCandidates,
                 SectionId::kDictFoldedSlots);
  add(SectionId::kWordOffsets, kp.word_offsets,
      (kp.word_count + 1) * sizeof(uint64_t));
  add(SectionId::kWordPool, kp.word_pool, kp.word_offsets[kp.word_count]);
  add(SectionId::kWordSlots, kp.word_hash.slots,
      kp.word_hash.capacity * sizeof(uint32_t));
  add(SectionId::kPhraseWordOffsets, kp.phrase_word_offsets,
      (kp.phrase_count + 1) * sizeof(uint64_t));
  add(SectionId::kPhraseWords, kp.phrase_words,
      kp.phrase_word_offsets[kp.phrase_count] * sizeof(WordId));
  const uint64_t entity_phrase_total = kp.entity_phrase_offsets[entity_count];
  add(SectionId::kEntityPhraseOffsets, kp.entity_phrase_offsets,
      (entity_count + 1) * sizeof(uint64_t));
  add(SectionId::kEntityPhraseIds, kp.entity_phrase_ids,
      entity_phrase_total * sizeof(PhraseId));
  add(SectionId::kEntityPhraseCounts, kp.entity_phrase_counts,
      entity_phrase_total * sizeof(uint32_t));
  add(SectionId::kEntityPhraseMi, kp.entity_phrase_mi,
      entity_phrase_total * sizeof(double));
  const uint64_t entity_word_total = kp.entity_word_offsets[entity_count];
  add(SectionId::kEntityWordOffsets, kp.entity_word_offsets,
      (entity_count + 1) * sizeof(uint64_t));
  add(SectionId::kEntityWordIds, kp.entity_word_ids,
      entity_word_total * sizeof(WordId));
  add(SectionId::kEntityWordNpmi, kp.entity_word_npmi,
      entity_word_total * sizeof(double));
  add(SectionId::kPhraseDf, kp.phrase_df, kp.phrase_count * sizeof(uint32_t));
  add(SectionId::kWordDf, kp.word_df, kp.word_count * sizeof(uint32_t));
  add(SectionId::kInLinkOffsets, links.in_offsets,
      (entity_count + 1) * sizeof(uint64_t));
  add(SectionId::kInLinkTargets, links.in_targets,
      links.in_offsets[entity_count] * sizeof(EntityId));
  add(SectionId::kOutLinkOffsets, links.out_offsets,
      (entity_count + 1) * sizeof(uint64_t));
  add(SectionId::kOutLinkTargets, links.out_targets,
      links.out_offsets[entity_count] * sizeof(EntityId));
  AIDA_CHECK(sections.size() == kSectionTotal,
             "section list out of sync with SectionId enum");

  std::vector<SectionEntry> entries(sections.size());
  uint64_t cursor =
      AlignUp(sizeof(FileHeader) + sections.size() * sizeof(SectionEntry));
  for (size_t i = 0; i < sections.size(); ++i) {
    entries[i].id = static_cast<uint32_t>(sections[i].id);
    entries[i].offset = cursor;
    entries[i].size = sections[i].size;
    cursor = AlignUp(cursor + sections[i].size);
  }

  FileHeader header;
  header.file_size = cursor;
  header.section_count = sections.size();

  std::string out(cursor, '\0');
  std::memcpy(out.data(), &header, sizeof(header));
  std::memcpy(out.data() + sizeof(header), entries.data(),
              entries.size() * sizeof(SectionEntry));
  for (size_t i = 0; i < sections.size(); ++i) {
    if (sections[i].size > 0) {
      std::memcpy(out.data() + entries[i].offset, sections[i].data,
                  sections[i].size);
    }
  }
  return out;
}

util::Status SaveFlatSnapshot(const KnowledgeBase& kb,
                              const std::string& path) {
  return util::WriteFile(path, SerializeFlatSnapshot(kb));
}

bool LooksLikeFlatSnapshot(std::string_view data) {
  if (data.size() < sizeof(uint32_t)) return false;
  uint32_t magic = 0;
  std::memcpy(&magic, data.data(), sizeof(magic));
  return magic == kFlatMagic;
}

MagicProbe ProbeFileMagic(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return MagicProbe::kUnreadable;
  char prefix[sizeof(uint32_t)];
  const size_t read = std::fread(prefix, 1, sizeof(prefix), f);
  std::fclose(f);
  if (read != sizeof(prefix)) return MagicProbe::kOther;
  return LooksLikeFlatSnapshot(std::string_view(prefix, sizeof(prefix)))
             ? MagicProbe::kFlat
             : MagicProbe::kOther;
}

// ---------------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------------

namespace {

struct AIDA_VIEW_TYPE SectionTable {
  std::string_view data;
  uint64_t offset[kMaxSectionId + 1] = {};
  uint64_t size[kMaxSectionId + 1] = {};
  bool present[kMaxSectionId + 1] = {};
};

util::Status ParseSections(std::string_view data, SectionTable* table) {
  table->data = data;
  if (data.size() < sizeof(FileHeader)) return Corrupt("header truncated");
  FileHeader header;
  std::memcpy(&header, data.data(), sizeof(header));
  if (header.magic != kFlatMagic) return Corrupt("bad magic");
  if (header.version != kFlatVersion) {
    return Corrupt("unsupported version " + std::to_string(header.version));
  }
  if (header.file_size != data.size()) return Corrupt("file size mismatch");
  if (header.section_count != kSectionTotal) {
    return Corrupt("unexpected section count");
  }
  const uint64_t table_bytes = kSectionTotal * sizeof(SectionEntry);
  if (data.size() - sizeof(FileHeader) < table_bytes) {
    return Corrupt("section table truncated");
  }
  for (uint64_t i = 0; i < kSectionTotal; ++i) {
    SectionEntry entry;
    std::memcpy(&entry,
                data.data() + sizeof(FileHeader) + i * sizeof(SectionEntry),
                sizeof(entry));
    if (entry.id < 1 || entry.id > kMaxSectionId) {
      return Corrupt("unknown section id");
    }
    if (table->present[entry.id]) return Corrupt("duplicate section");
    if (entry.offset % kSectionAlignment != 0) {
      return Corrupt("misaligned section");
    }
    if (entry.offset > data.size() ||
        entry.size > data.size() - entry.offset) {
      return Corrupt("section out of bounds");
    }
    table->present[entry.id] = true;
    table->offset[entry.id] = entry.offset;
    table->size[entry.id] = entry.size;
  }
  return util::Status::Ok();
}

/// Fetches a section as `count` elements of T; the section byte size must
/// match exactly. All pointers handed out stay inside `data`.
template <typename T>
util::Status GetArray(const SectionTable& table, SectionId id, uint64_t count,
                      const T** out) {
  static_assert(std::is_trivially_copyable_v<T>);
  const uint32_t i = static_cast<uint32_t>(id);
  if (table.size[i] % sizeof(T) != 0 || table.size[i] / sizeof(T) != count) {
    return Corrupt("section " + std::to_string(i) + " has wrong size");
  }
  *out = reinterpret_cast<const T*>(table.data.data() + table.offset[i]);
  return util::Status::Ok();
}

/// `count + 1` offsets starting at 0 and non-decreasing (strictly
/// increasing rows when `strict`), ending at `*total`.
util::Status ValidateOffsets(const uint64_t* offsets, uint64_t count,
                             bool strict, const char* what, uint64_t* total) {
  if (offsets[0] != 0) {
    return Corrupt(std::string(what) + " offsets do not start at 0");
  }
  for (uint64_t i = 0; i < count; ++i) {
    if (offsets[i + 1] < offsets[i] ||
        (strict && offsets[i + 1] == offsets[i])) {
      return Corrupt(std::string(what) + " offsets not monotonic");
    }
  }
  *total = offsets[count];
  return util::Status::Ok();
}

/// Every key index must be reachable: slots hold a permutation of
/// 1..count with at least one empty slot left to terminate probes.
util::Status ValidateSlots(const StringHashView& hash, uint64_t count,
                           const char* what) {
  if (hash.capacity < 2 || (hash.capacity & (hash.capacity - 1)) != 0) {
    return Corrupt(std::string(what) + " hash capacity not a power of two");
  }
  if (count >= hash.capacity) {
    return Corrupt(std::string(what) + " hash table has no empty slot");
  }
  std::vector<bool> seen(count, false);
  uint64_t used = 0;
  for (uint64_t s = 0; s < hash.capacity; ++s) {
    const uint32_t v = hash.slots[s];
    if (v == 0) continue;
    if (v > count) {
      return Corrupt(std::string(what) + " hash slot out of range");
    }
    if (seen[v - 1]) {
      return Corrupt(std::string(what) + " hash slot duplicated");
    }
    seen[v - 1] = true;
    ++used;
  }
  if (used != count) {
    return Corrupt(std::string(what) + " hash table misses keys");
  }
  return util::Status::Ok();
}

/// Ids bounded by `limit`; with `sorted_rows`, strictly ascending inside
/// each CSR row (binary searches and sorted intersections rely on it).
util::Status ValidateIdRows(const uint64_t* offsets, uint64_t row_count,
                            const uint32_t* ids, uint64_t limit,
                            bool sorted_rows, const char* what) {
  for (uint64_t row = 0; row < row_count; ++row) {
    for (uint64_t i = offsets[row]; i < offsets[row + 1]; ++i) {
      if (ids[i] >= limit) {
        return Corrupt(std::string(what) + " id out of range");
      }
      if (sorted_rows && i > offsets[row] && ids[i] <= ids[i - 1]) {
        return Corrupt(std::string(what) + " row not sorted");
      }
    }
  }
  return util::Status::Ok();
}

util::Status LoadDictTable(const SectionTable& table, uint64_t name_count,
                           uint64_t entity_count, SectionId name_offsets_id,
                           SectionId name_pool_id, SectionId ranges_id,
                           SectionId candidates_id, SectionId slots_id,
                           const char* what, Dictionary::TableView* out) {
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, name_offsets_id, name_count + 1,
                                     &out->name_offsets));
  uint64_t pool_size = 0;
  AIDA_FLAT_RETURN_IF_ERROR(ValidateOffsets(out->name_offsets, name_count,
                                            /*strict=*/false, what,
                                            &pool_size));
  AIDA_FLAT_RETURN_IF_ERROR(
      GetArray(table, name_pool_id, pool_size, &out->name_pool));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, ranges_id, name_count + 1,
                                     &out->candidate_offsets));
  uint64_t candidate_total = 0;
  AIDA_FLAT_RETURN_IF_ERROR(ValidateOffsets(out->candidate_offsets,
                                            name_count, /*strict=*/false,
                                            what, &candidate_total));
  AIDA_FLAT_RETURN_IF_ERROR(
      GetArray(table, candidates_id, candidate_total, &out->candidates));
  for (uint64_t c = 0; c < candidate_total; ++c) {
    if (out->candidates[c].entity >= entity_count) {
      return Corrupt(std::string(what) + " candidate entity out of range");
    }
  }
  // Lookup dispatches on name length and the hash compares raw bytes, so
  // correctness only needs unique names; sortedness additionally makes
  // AllNames/ExportAnchors deterministic and lets us verify uniqueness in
  // one linear pass.
  for (uint64_t i = 0; i + 1 < name_count; ++i) {
    const std::string_view a(out->name_pool + out->name_offsets[i],
                             out->name_offsets[i + 1] - out->name_offsets[i]);
    const std::string_view b(
        out->name_pool + out->name_offsets[i + 1],
        out->name_offsets[i + 2] - out->name_offsets[i + 1]);
    if (!(a < b)) return Corrupt(std::string(what) + " names not sorted");
  }
  const uint32_t slots_index = static_cast<uint32_t>(slots_id);
  if (table.size[slots_index] % sizeof(uint32_t) != 0) {
    return Corrupt(std::string(what) + " slot section has wrong size");
  }
  out->hash.capacity = table.size[slots_index] / sizeof(uint32_t);
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, slots_id, out->hash.capacity,
                                     &out->hash.slots));
  AIDA_FLAT_RETURN_IF_ERROR(ValidateSlots(out->hash, name_count, what));
  out->name_count = name_count;
  return util::Status::Ok();
}

util::Status AssembleFromSections(const SectionTable& table,
                                  std::shared_ptr<const void> backing,
                                  std::unique_ptr<KnowledgeBase>* out) {
  const MetaSection* meta = nullptr;
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kMeta, 1, &meta));
  if (meta->entity_count >= kMaxCount || meta->taxonomy_count >= kMaxCount ||
      meta->word_count >= kMaxCount || meta->phrase_count >= kMaxCount ||
      meta->exact_name_count >= kMaxCount ||
      meta->folded_name_count >= kMaxCount || meta->link_count >= kMaxCount) {
    return Corrupt("implausible element count");
  }
  const uint64_t entity_count = meta->entity_count;
  if (meta->collection_size != entity_count) {
    return Corrupt("collection size does not match entity count");
  }

  // ---- Taxonomy (materialized) -------------------------------------------
  const uint64_t* tax_name_offsets = nullptr;
  const char* tax_name_pool = nullptr;
  const TypeId* tax_parents = nullptr;
  uint64_t tax_pool_size = 0;
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kTaxonomyNameOffsets,
                                     meta->taxonomy_count + 1,
                                     &tax_name_offsets));
  AIDA_FLAT_RETURN_IF_ERROR(ValidateOffsets(tax_name_offsets,
                                            meta->taxonomy_count,
                                            /*strict=*/false, "taxonomy",
                                            &tax_pool_size));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kTaxonomyNamePool,
                                     tax_pool_size, &tax_name_pool));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kTaxonomyParents,
                                     meta->taxonomy_count, &tax_parents));
  // TypeTaxonomy::AddType enforces unique names and in-range parents with
  // process-aborting checks; everything must be validated here first.
  auto taxonomy = std::make_unique<TypeTaxonomy>();
  {
    std::unordered_set<std::string_view> seen;
    for (uint64_t t = 0; t < meta->taxonomy_count; ++t) {
      const std::string_view name(tax_name_pool + tax_name_offsets[t],
                                  tax_name_offsets[t + 1] -
                                      tax_name_offsets[t]);
      if (!seen.insert(name).second) return Corrupt("duplicate type name");
      if (tax_parents[t] != kNoType && tax_parents[t] >= t) {
        return Corrupt("taxonomy parent out of order");
      }
    }
    for (uint64_t t = 0; t < meta->taxonomy_count; ++t) {
      taxonomy->AddType(std::string(tax_name_pool + tax_name_offsets[t],
                                    tax_name_offsets[t + 1] -
                                        tax_name_offsets[t]),
                        tax_parents[t]);
    }
  }

  // ---- Entity repository (materialized) ----------------------------------
  const uint64_t* entity_name_offsets = nullptr;
  const char* entity_name_pool = nullptr;
  const uint64_t* entity_anchor_counts = nullptr;
  const uint64_t* entity_type_offsets = nullptr;
  const TypeId* entity_types = nullptr;
  uint64_t entity_pool_size = 0;
  uint64_t entity_type_total = 0;
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kEntityNameOffsets,
                                     entity_count + 1, &entity_name_offsets));
  AIDA_FLAT_RETURN_IF_ERROR(ValidateOffsets(entity_name_offsets, entity_count,
                                            /*strict=*/false, "entity names",
                                            &entity_pool_size));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kEntityNamePool,
                                     entity_pool_size, &entity_name_pool));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kEntityAnchorCounts,
                                     entity_count, &entity_anchor_counts));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kEntityTypeOffsets,
                                     entity_count + 1, &entity_type_offsets));
  AIDA_FLAT_RETURN_IF_ERROR(ValidateOffsets(entity_type_offsets, entity_count,
                                            /*strict=*/false, "entity types",
                                            &entity_type_total));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kEntityTypes,
                                     entity_type_total, &entity_types));
  AIDA_FLAT_RETURN_IF_ERROR(ValidateIdRows(entity_type_offsets, entity_count,
                                           entity_types,
                                           meta->taxonomy_count,
                                           /*sorted_rows=*/false,
                                           "entity type"));
  auto repository = std::make_unique<EntityRepository>();
  {
    std::unordered_set<std::string_view> seen;
    for (uint64_t e = 0; e < entity_count; ++e) {
      const std::string_view name(entity_name_pool + entity_name_offsets[e],
                                  entity_name_offsets[e + 1] -
                                      entity_name_offsets[e]);
      if (!seen.insert(name).second) {
        return Corrupt("duplicate entity name");
      }
    }
    for (uint64_t e = 0; e < entity_count; ++e) {
      const EntityId id = repository->Add(
          std::string(entity_name_pool + entity_name_offsets[e],
                      entity_name_offsets[e + 1] - entity_name_offsets[e]));
      Entity& entity = repository->GetMutable(id);
      entity.anchor_count = entity_anchor_counts[e];
      entity.types.assign(entity_types + entity_type_offsets[e],
                          entity_types + entity_type_offsets[e + 1]);
    }
  }

  // ---- Dictionary (zero-copy) --------------------------------------------
  Dictionary::FlatView dict_view;
  AIDA_FLAT_RETURN_IF_ERROR(LoadDictTable(
      table, meta->exact_name_count, entity_count,
      SectionId::kDictExactNameOffsets, SectionId::kDictExactNamePool,
      SectionId::kDictExactRanges, SectionId::kDictExactCandidates,
      SectionId::kDictExactSlots, "exact dictionary", &dict_view.exact));
  AIDA_FLAT_RETURN_IF_ERROR(LoadDictTable(
      table, meta->folded_name_count, entity_count,
      SectionId::kDictFoldedNameOffsets, SectionId::kDictFoldedNamePool,
      SectionId::kDictFoldedRanges, SectionId::kDictFoldedCandidates,
      SectionId::kDictFoldedSlots, "folded dictionary", &dict_view.folded));

  // ---- Keyphrase store (zero-copy) ---------------------------------------
  KeyphraseStore::FlatView kp_view;
  uint64_t word_pool_size = 0;
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kWordOffsets,
                                     meta->word_count + 1,
                                     &kp_view.word_offsets));
  AIDA_FLAT_RETURN_IF_ERROR(ValidateOffsets(kp_view.word_offsets,
                                            meta->word_count,
                                            /*strict=*/false, "word",
                                            &word_pool_size));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kWordPool,
                                     word_pool_size, &kp_view.word_pool));
  {
    const uint32_t slots_index =
        static_cast<uint32_t>(SectionId::kWordSlots);
    if (table.size[slots_index] % sizeof(uint32_t) != 0) {
      return Corrupt("word slot section has wrong size");
    }
    kp_view.word_hash.capacity = table.size[slots_index] / sizeof(uint32_t);
    AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kWordSlots,
                                       kp_view.word_hash.capacity,
                                       &kp_view.word_hash.slots));
    AIDA_FLAT_RETURN_IF_ERROR(
        ValidateSlots(kp_view.word_hash, meta->word_count, "word"));
  }
  uint64_t phrase_word_total = 0;
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kPhraseWordOffsets,
                                     meta->phrase_count + 1,
                                     &kp_view.phrase_word_offsets));
  // Strict: the store never produces an empty phrase (InternPhrase checks),
  // and downstream matching assumes at least one word per phrase.
  AIDA_FLAT_RETURN_IF_ERROR(ValidateOffsets(kp_view.phrase_word_offsets,
                                            meta->phrase_count,
                                            /*strict=*/true, "phrase",
                                            &phrase_word_total));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kPhraseWords,
                                     phrase_word_total,
                                     &kp_view.phrase_words));
  AIDA_FLAT_RETURN_IF_ERROR(ValidateIdRows(kp_view.phrase_word_offsets,
                                           meta->phrase_count,
                                           kp_view.phrase_words,
                                           meta->word_count,
                                           /*sorted_rows=*/false,
                                           "phrase word"));
  uint64_t entity_phrase_total = 0;
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kEntityPhraseOffsets,
                                     entity_count + 1,
                                     &kp_view.entity_phrase_offsets));
  AIDA_FLAT_RETURN_IF_ERROR(ValidateOffsets(kp_view.entity_phrase_offsets,
                                            entity_count, /*strict=*/false,
                                            "entity phrase",
                                            &entity_phrase_total));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kEntityPhraseIds,
                                     entity_phrase_total,
                                     &kp_view.entity_phrase_ids));
  // Insertion order is part of the contract (EntityPhrases documents it),
  // so rows are only range-checked, not required sorted.
  AIDA_FLAT_RETURN_IF_ERROR(ValidateIdRows(kp_view.entity_phrase_offsets,
                                           entity_count,
                                           kp_view.entity_phrase_ids,
                                           meta->phrase_count,
                                           /*sorted_rows=*/false,
                                           "entity phrase"));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kEntityPhraseCounts,
                                     entity_phrase_total,
                                     &kp_view.entity_phrase_counts));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kEntityPhraseMi,
                                     entity_phrase_total,
                                     &kp_view.entity_phrase_mi));
  uint64_t entity_word_total = 0;
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kEntityWordOffsets,
                                     entity_count + 1,
                                     &kp_view.entity_word_offsets));
  AIDA_FLAT_RETURN_IF_ERROR(ValidateOffsets(kp_view.entity_word_offsets,
                                            entity_count, /*strict=*/false,
                                            "entity word",
                                            &entity_word_total));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kEntityWordIds,
                                     entity_word_total,
                                     &kp_view.entity_word_ids));
  // Sorted: KeywordNpmi binary-searches these rows.
  AIDA_FLAT_RETURN_IF_ERROR(ValidateIdRows(kp_view.entity_word_offsets,
                                           entity_count,
                                           kp_view.entity_word_ids,
                                           meta->word_count,
                                           /*sorted_rows=*/true,
                                           "entity word"));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kEntityWordNpmi,
                                     entity_word_total,
                                     &kp_view.entity_word_npmi));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kPhraseDf,
                                     meta->phrase_count, &kp_view.phrase_df));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kWordDf,
                                     meta->word_count, &kp_view.word_df));
  kp_view.word_count = meta->word_count;
  kp_view.phrase_count = meta->phrase_count;
  kp_view.entity_count = entity_count;
  kp_view.collection_size = meta->collection_size;

  // ---- Link graph (zero-copy) --------------------------------------------
  LinkGraph::FlatView link_view;
  uint64_t in_total = 0;
  uint64_t out_total = 0;
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kInLinkOffsets,
                                     entity_count + 1,
                                     &link_view.in_offsets));
  AIDA_FLAT_RETURN_IF_ERROR(ValidateOffsets(link_view.in_offsets,
                                            entity_count, /*strict=*/false,
                                            "in-link", &in_total));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kInLinkTargets,
                                     in_total, &link_view.in_targets));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kOutLinkOffsets,
                                     entity_count + 1,
                                     &link_view.out_offsets));
  AIDA_FLAT_RETURN_IF_ERROR(ValidateOffsets(link_view.out_offsets,
                                            entity_count, /*strict=*/false,
                                            "out-link", &out_total));
  AIDA_FLAT_RETURN_IF_ERROR(GetArray(table, SectionId::kOutLinkTargets,
                                     out_total, &link_view.out_targets));
  if (in_total != meta->link_count || out_total != meta->link_count) {
    return Corrupt("link totals disagree with meta");
  }
  // Sorted rows: Milne-Witten intersects in-link lists pairwise.
  AIDA_FLAT_RETURN_IF_ERROR(ValidateIdRows(link_view.in_offsets, entity_count,
                                           link_view.in_targets, entity_count,
                                           /*sorted_rows=*/true, "in-link"));
  AIDA_FLAT_RETURN_IF_ERROR(ValidateIdRows(link_view.out_offsets,
                                           entity_count,
                                           link_view.out_targets,
                                           entity_count,
                                           /*sorted_rows=*/true, "out-link"));
  link_view.entity_count = entity_count;

  KnowledgeBase::Parts parts;
  parts.entities = std::move(repository);
  parts.dictionary = Dictionary::FromFlat(dict_view);
  parts.keyphrases = KeyphraseStore::FromFlat(kp_view);
  parts.links = LinkGraph::FromFlat(link_view);
  parts.taxonomy = std::move(taxonomy);
  parts.backing = std::move(backing);
  *out = KnowledgeBase::FromParts(std::move(parts));
  return util::Status::Ok();
}

}  // namespace

util::StatusOr<std::unique_ptr<KnowledgeBase>> LoadFlatSnapshotFromBuffer(
    std::string_view data, std::shared_ptr<const void> backing) {
  if (reinterpret_cast<uintptr_t>(data.data()) % kSectionAlignment != 0) {
    return util::Status::InvalidArgument(
        "flat snapshot buffer is not 8-byte aligned");
  }
  SectionTable table;
  AIDA_FLAT_RETURN_IF_ERROR(ParseSections(data, &table));
  std::unique_ptr<KnowledgeBase> kb;
  AIDA_FLAT_RETURN_IF_ERROR(
      AssembleFromSections(table, std::move(backing), &kb));
  return kb;
}

util::StatusOr<std::unique_ptr<KnowledgeBase>> LoadFlatSnapshotFromString(
    std::string_view data) {
  // std::string's buffer only guarantees char alignment; copy into memory
  // from operator new, which is aligned for u64/double array views.
  std::shared_ptr<char[]> buffer(new char[data.size() + 1]);
  if (!data.empty()) std::memcpy(buffer.get(), data.data(), data.size());
  const std::string_view view(buffer.get(), data.size());
  return LoadFlatSnapshotFromBuffer(
      view, std::shared_ptr<const void>(buffer, buffer.get()));
}

util::StatusOr<std::unique_ptr<KnowledgeBase>> LoadFlatSnapshot(
    const std::string& path) {
  util::StatusOr<std::shared_ptr<const MappedFile>> file =
      MappedFile::Open(path);
  if (!file.ok()) return file.status();
  const std::shared_ptr<const MappedFile>& mapped = *file;
  if (mapped->size() == 0) return Corrupt("empty file");
  const std::string_view view(mapped->data(), mapped->size());
  return LoadFlatSnapshotFromBuffer(view, mapped);
}

#undef AIDA_FLAT_RETURN_IF_ERROR

}  // namespace aida::kb::flat
