#ifndef AIDA_KB_FLAT_FLAT_LAYOUT_H_
#define AIDA_KB_FLAT_FLAT_LAYOUT_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace aida::kb::flat {

/// First four bytes of a flat snapshot. Distinct from the v1 record-stream
/// magic (0xA1DA4B42) so LoadKnowledgeBase can dispatch on the prefix.
inline constexpr uint32_t kFlatMagic = 0xA1DAF1A7;

/// Bumped whenever the section layout, the hash probing scheme, or the
/// derived-weight formulas change. Unlike the v1 format — which stores
/// source facts and recomputes weights on load — a flat snapshot persists
/// the finalized arrays verbatim, so a loader must refuse files written
/// by a different weighting scheme rather than silently serving them.
inline constexpr uint32_t kFlatVersion = 1;

/// Every section payload starts on an 8-byte boundary (relative to the
/// file start) so u64/double arrays can be read in place from a
/// page-aligned mapping without misaligned access.
inline constexpr uint64_t kSectionAlignment = 8;

inline constexpr uint64_t AlignUp(uint64_t offset) {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

/// Section identifiers. Values are part of the on-disk format; append
/// new ids, never renumber.
enum class SectionId : uint32_t {
  kMeta = 1,
  // Type taxonomy (materialized on load; small).
  kTaxonomyNameOffsets = 2,
  kTaxonomyNamePool = 3,
  kTaxonomyParents = 4,
  // Entity repository (materialized on load; small relative to features).
  kEntityNameOffsets = 5,
  kEntityNamePool = 6,
  kEntityAnchorCounts = 7,
  kEntityTypeOffsets = 8,
  kEntityTypes = 9,
  // Name dictionary, exact table (all surface names, sorted).
  kDictExactNameOffsets = 10,
  kDictExactNamePool = 11,
  kDictExactRanges = 12,
  kDictExactCandidates = 13,
  kDictExactSlots = 14,
  // Name dictionary, case-folded table (names longer than 3 chars).
  kDictFoldedNameOffsets = 15,
  kDictFoldedNamePool = 16,
  kDictFoldedRanges = 17,
  kDictFoldedCandidates = 18,
  kDictFoldedSlots = 19,
  // Keyphrase store: interned word vocabulary + lookup table.
  kWordOffsets = 20,
  kWordPool = 21,
  kWordSlots = 22,
  // Keyphrase store: phrase -> word-id sequences (CSR).
  kPhraseWordOffsets = 23,
  kPhraseWords = 24,
  // Keyphrase store: per-entity phrase associations (struct-of-arrays).
  kEntityPhraseOffsets = 25,
  kEntityPhraseIds = 26,
  kEntityPhraseCounts = 27,
  kEntityPhraseMi = 28,
  // Keyphrase store: per-entity distinct keywords + NPMI weights.
  kEntityWordOffsets = 29,
  kEntityWordIds = 30,
  kEntityWordNpmi = 31,
  // Keyphrase store: document frequencies.
  kPhraseDf = 32,
  kWordDf = 33,
  // Link graph (CSR, both directions).
  kInLinkOffsets = 34,
  kInLinkTargets = 35,
  kOutLinkOffsets = 36,
  kOutLinkTargets = 37,
};

struct FileHeader {
  uint32_t magic = kFlatMagic;
  uint32_t version = kFlatVersion;
  /// Total file size; must equal the mapped size exactly.
  uint64_t file_size = 0;
  uint64_t section_count = 0;
  uint64_t reserved = 0;
};
static_assert(sizeof(FileHeader) == 32);
static_assert(std::is_trivially_copyable_v<FileHeader>);

struct SectionEntry {
  uint32_t id = 0;
  uint32_t reserved = 0;
  /// Byte offset from the file start; kSectionAlignment-aligned.
  uint64_t offset = 0;
  uint64_t size = 0;
};
static_assert(sizeof(SectionEntry) == 24);
static_assert(std::is_trivially_copyable_v<SectionEntry>);

/// Cross-check counts. Everything here is derivable from section sizes;
/// storing them once lets the loader verify every section against one
/// authoritative shape instead of trusting sizes to agree pairwise.
struct MetaSection {
  uint64_t entity_count = 0;
  uint64_t taxonomy_count = 0;
  uint64_t word_count = 0;
  uint64_t phrase_count = 0;
  /// Collection size N the keyphrase weights were computed against.
  uint64_t collection_size = 0;
  uint64_t exact_name_count = 0;
  uint64_t folded_name_count = 0;
  /// Total directed links (== out-link target count == in-link targets).
  uint64_t link_count = 0;
};
static_assert(sizeof(MetaSection) == 64);
static_assert(std::is_trivially_copyable_v<MetaSection>);

}  // namespace aida::kb::flat

#endif  // AIDA_KB_FLAT_FLAT_LAYOUT_H_
