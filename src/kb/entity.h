#ifndef AIDA_KB_ENTITY_H_
#define AIDA_KB_ENTITY_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/lifetime.h"

namespace aida::kb {

/// Dense integer handle for an entity in the repository.
using EntityId = uint32_t;
/// Dense integer handle for an interned keyphrase.
using PhraseId = uint32_t;
/// Dense integer handle for an interned keyword (single token).
using WordId = uint32_t;
/// Dense integer handle for a semantic type (class) in the taxonomy.
using TypeId = uint32_t;

/// Sentinel for "no entity". Also used by gold annotations to mark
/// mentions whose true entity is out of the knowledge base.
inline constexpr EntityId kNoEntity = std::numeric_limits<EntityId>::max();

/// Sentinel phrase/word/type ids.
inline constexpr PhraseId kNoPhrase = std::numeric_limits<PhraseId>::max();
inline constexpr WordId kNoWord = std::numeric_limits<WordId>::max();
inline constexpr TypeId kNoType = std::numeric_limits<TypeId>::max();

/// A canonical entity registered in the knowledge base (Section 2.3 of the
/// paper). Popularity mirrors the Wikipedia-derived signals AIDA uses: the
/// number of link anchors referring to the entity.
struct Entity {
  EntityId id = kNoEntity;
  /// Unique canonical name, e.g. "Jimmy_Page".
  std::string canonical_name;
  /// Total anchor occurrences across the collection; the basis of the
  /// popularity prior (Section 3.3.3).
  uint64_t anchor_count = 0;
  /// Types assigned in the taxonomy (YAGO-style classes).
  std::vector<TypeId> types;
};

/// Owns all entities; ids are indices into the backing vector.
class EntityRepository {
 public:
  /// Adds an entity with the given canonical name; returns its id.
  /// Duplicate canonical names are a programmer error.
  EntityId Add(std::string canonical_name);

  /// Number of registered entities.
  size_t size() const { return entities_.size(); }

  const Entity& Get(EntityId id) const AIDA_LIFETIME_BOUND;
  Entity& GetMutable(EntityId id) AIDA_LIFETIME_BOUND;

  /// Looks up by canonical name; returns kNoEntity when absent.
  EntityId FindByName(const std::string& canonical_name) const;

  const std::vector<Entity>& entities() const AIDA_LIFETIME_BOUND {
    return entities_;
  }

 private:
  std::vector<Entity> entities_;
  std::unordered_map<std::string, EntityId> by_name_;
};

}  // namespace aida::kb

#endif  // AIDA_KB_ENTITY_H_
