#include "kb/dictionary.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "util/check.h"
#include "util/string_util.h"

namespace aida::kb {

namespace {

// Steady-state case fold for Lookup. The old spelling —
// TableLookup(view_.folded, util::ToUpper(mention_text)) — built a fresh
// std::string per folded lookup: one heap allocation on every candidate
// probe for every mention longer than 3 characters, found by the
// alloc-probe audit and pinned by a warm-lookup allocation assertion in
// tests/alloc_probe_test.cc. Mentions up to kFoldBufferSize now fold
// into a stack buffer; the fold must match util::ToUpper byte-for-byte
// because AddAnchor built the folded table with it.
constexpr size_t kFoldBufferSize = 256;

void FoldToUpper(std::string_view text, char* buffer) AIDA_NONBLOCKING {
  AIDA_EFFECT_ESCAPE_BEGIN(
      "std::toupper is a ctype table lookup — lock- and allocation-free "
      "but opaque to the effect analysis; kept (rather than an inline "
      "ASCII fold) so lookup-time folding can never diverge from the "
      "util::ToUpper the folded table was built with")
  for (size_t i = 0; i < text.size(); ++i) {
    buffer[i] =
        static_cast<char>(std::toupper(static_cast<unsigned char>(text[i])));
  }
  AIDA_EFFECT_ESCAPE_END
}

}  // namespace

void Dictionary::AddAnchor(std::string_view name, EntityId entity,
                           uint64_t count) {
  AIDA_DCHECK(!finalized_);
  std::string key(name);
  build_exact_[key][entity] += count;
  if (name.size() > 3) {
    build_folded_[util::ToUpper(name)][entity] += count;
  }
}

void Dictionary::FlattenTable(NameMap& build, OwnedTable& owned,
                              TableView& view) {
  std::vector<const NameMap::value_type*> entries;
  entries.reserve(build.size());
  for (const auto& entry : build) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  owned.name_offsets.reserve(entries.size() + 1);
  owned.name_offsets.push_back(0);
  owned.candidate_offsets.reserve(entries.size() + 1);
  owned.candidate_offsets.push_back(0);
  for (const auto* entry : entries) {
    owned.name_pool.append(entry->first);
    owned.name_offsets.push_back(owned.name_pool.size());

    const size_t first = owned.candidates.size();
    uint64_t total = 0;
    for (const auto& [entity, count] : entry->second) {
      NameCandidate candidate;
      candidate.entity = entity;
      candidate.anchor_count = count;
      owned.candidates.push_back(candidate);
      total += count;
    }
    std::sort(owned.candidates.begin() + first, owned.candidates.end(),
              [](const NameCandidate& a, const NameCandidate& b) {
                if (a.anchor_count != b.anchor_count)
                  return a.anchor_count > b.anchor_count;
                return a.entity < b.entity;
              });
    for (size_t i = first; i < owned.candidates.size(); ++i) {
      owned.candidates[i].prior =
          total > 0 ? static_cast<double>(owned.candidates[i].anchor_count) /
                          static_cast<double>(total)
                    : 0.0;
    }
    owned.candidate_offsets.push_back(owned.candidates.size());
  }

  const size_t name_count = entries.size();
  owned.slots = flat::BuildHashSlots(name_count, [&](uint64_t i) {
    const uint64_t begin = owned.name_offsets[i];
    return std::string_view(owned.name_pool.data() + begin,
                            owned.name_offsets[i + 1] - begin);
  });

  view.name_offsets = owned.name_offsets.data();
  view.name_pool = owned.name_pool.data();
  view.candidate_offsets = owned.candidate_offsets.data();
  view.candidates = owned.candidates.data();
  view.hash = {owned.slots.data(), owned.slots.size()};
  view.name_count = name_count;

  NameMap().swap(build);
}

void Dictionary::Finalize() {
  AIDA_CHECK(!finalized_, "Dictionary finalized twice");
  FlattenTable(build_exact_, owned_exact_, view_.exact);
  FlattenTable(build_folded_, owned_folded_, view_.folded);
  finalized_ = true;
}

std::unique_ptr<Dictionary> Dictionary::FromFlat(const FlatView& view) {
  auto dictionary = std::unique_ptr<Dictionary>(new Dictionary());
  dictionary->view_ = view;
  dictionary->finalized_ = true;
  return dictionary;
}

const Dictionary::FlatView& Dictionary::flat_view() const {
  AIDA_DCHECK(finalized_);
  return view_;
}

std::span<const NameCandidate> Dictionary::TableLookup(
    const TableView& table, std::string_view name) const AIDA_NONBLOCKING {
  const uint64_t index = table.hash.Find(
      name, [&](uint64_t i) { return TableName(table, i); });
  if (index == flat::kHashNotFound) return {};
  const uint64_t begin = table.candidate_offsets[index];
  return {table.candidates + begin,
          static_cast<size_t>(table.candidate_offsets[index + 1] - begin)};
}

std::span<const NameCandidate> Dictionary::Lookup(
    std::string_view mention_text) const AIDA_NONBLOCKING {
  AIDA_DCHECK(finalized_);
  if (mention_text.size() <= 3) {
    return TableLookup(view_.exact, mention_text);
  }
  if (mention_text.size() <= kFoldBufferSize) {
    char buffer[kFoldBufferSize];
    FoldToUpper(mention_text, buffer);
    return TableLookup(view_.folded,
                       std::string_view(buffer, mention_text.size()));
  }
  // Mentions longer than the fold buffer are pathological (no real
  // surface form is 256+ bytes) but must stay correct, not crash.
  AIDA_EFFECT_ESCAPE_BEGIN(
      "cold branch: heap case-fold for mentions longer than the stack "
      "buffer; unreachable on real text, kept for correctness")
  return TableLookup(view_.folded, util::ToUpper(mention_text));
  AIDA_EFFECT_ESCAPE_END
}

size_t Dictionary::NameCount() const {
  return finalized_ ? static_cast<size_t>(view_.exact.name_count)
                    : build_exact_.size();
}

double Dictionary::MeanAmbiguity() const {
  AIDA_DCHECK(finalized_);
  if (view_.exact.name_count == 0) return 0.0;
  return static_cast<double>(
             view_.exact.candidate_offsets[view_.exact.name_count]) /
         static_cast<double>(view_.exact.name_count);
}

std::vector<Dictionary::AnchorRecord> Dictionary::ExportAnchors() const {
  AIDA_DCHECK(finalized_);
  std::vector<AnchorRecord> records;
  records.reserve(view_.exact.candidate_offsets[view_.exact.name_count]);
  for (uint64_t i = 0; i < view_.exact.name_count; ++i) {
    const std::string name(TableName(view_.exact, i));
    const size_t first = records.size();
    for (uint64_t c = view_.exact.candidate_offsets[i];
         c < view_.exact.candidate_offsets[i + 1]; ++c) {
      records.push_back(
          {name, view_.exact.candidates[c].entity,
           view_.exact.candidates[c].anchor_count});
    }
    // Candidates are stored by descending count; the export contract is
    // (name, entity) order.
    std::sort(records.begin() + first, records.end(),
              [](const AnchorRecord& a, const AnchorRecord& b) {
                return a.entity < b.entity;
              });
  }
  return records;
}

std::vector<std::string> Dictionary::AllNames() const {
  AIDA_DCHECK(finalized_);
  std::vector<std::string> names;
  names.reserve(view_.exact.name_count);
  for (uint64_t i = 0; i < view_.exact.name_count; ++i) {
    names.emplace_back(TableName(view_.exact, i));
  }
  return names;
}

}  // namespace aida::kb
