#include "kb/dictionary.h"

#include <algorithm>

#include "util/string_util.h"

namespace aida::kb {

void Dictionary::AddAnchor(std::string_view name, EntityId entity,
                           uint64_t count) {
  std::string key(name);
  exact_[key][entity] += count;
  if (name.size() > 3) {
    folded_[util::ToUpper(name)][entity] += count;
  }
}

std::vector<NameCandidate> Dictionary::Lookup(
    std::string_view mention_text) const {
  const CandidateMap* candidates = nullptr;
  if (mention_text.size() <= 3) {
    auto it = exact_.find(std::string(mention_text));
    if (it != exact_.end()) candidates = &it->second;
  } else {
    auto it = folded_.find(util::ToUpper(mention_text));
    if (it != folded_.end()) candidates = &it->second;
  }
  std::vector<NameCandidate> result;
  if (candidates == nullptr) return result;
  uint64_t total = 0;
  result.reserve(candidates->size());
  for (const auto& [entity, count] : *candidates) {
    result.push_back({entity, count, 0.0});
    total += count;
  }
  for (NameCandidate& c : result) {
    c.prior = total > 0
                  ? static_cast<double>(c.anchor_count) /
                        static_cast<double>(total)
                  : 0.0;
  }
  // Deterministic order: by descending prior, then entity id.
  std::sort(result.begin(), result.end(),
            [](const NameCandidate& a, const NameCandidate& b) {
              if (a.anchor_count != b.anchor_count)
                return a.anchor_count > b.anchor_count;
              return a.entity < b.entity;
            });
  return result;
}

bool Dictionary::Contains(std::string_view mention_text) const {
  if (mention_text.size() <= 3)
    return exact_.count(std::string(mention_text)) > 0;
  return folded_.count(util::ToUpper(mention_text)) > 0;
}

double Dictionary::MeanAmbiguity() const {
  if (exact_.empty()) return 0.0;
  size_t total = 0;
  for (const auto& [name, cands] : exact_) total += cands.size();
  return static_cast<double>(total) / static_cast<double>(exact_.size());
}

std::vector<Dictionary::AnchorRecord> Dictionary::ExportAnchors() const {
  std::vector<AnchorRecord> records;
  for (const auto& [name, candidates] : exact_) {
    for (const auto& [entity, count] : candidates) {
      records.push_back({name, entity, count});
    }
  }
  std::sort(records.begin(), records.end(),
            [](const AnchorRecord& a, const AnchorRecord& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.entity < b.entity;
            });
  return records;
}

std::vector<std::string> Dictionary::AllNames() const {
  std::vector<std::string> names;
  names.reserve(exact_.size());
  for (const auto& [name, cands] : exact_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace aida::kb
