#include "kb/kb_serialization.h"

#include <span>
#include <unordered_set>
#include <vector>

#include "kb/flat/flat_snapshot.h"
#include "kb/kb_builder.h"
#include "util/serialize.h"

namespace aida::kb {

namespace {

constexpr uint32_t kMagic = 0xA1DA4B42;
constexpr uint32_t kVersion = 1;

// KbBuilder enforces its preconditions with AIDA_CHECK (process abort), so
// everything read from the untrusted buffer must be validated *before* it
// reaches the builder — a corrupt snapshot must come back as an error
// Status, never as a check failure. The fuzz_kb_serialization harness
// hammers exactly this boundary.
bool HasVisibleWord(std::string_view phrase) {
  for (char c : phrase) {
    if (c != ' ') return true;
  }
  return false;
}

}  // namespace

std::string SerializeKnowledgeBase(const KnowledgeBase& kb) {
  util::BinaryWriter writer;
  writer.WriteU32(kMagic);
  writer.WriteU32(kVersion);

  // ---- Taxonomy -----------------------------------------------------------
  const TypeTaxonomy& taxonomy = kb.taxonomy();
  writer.WriteU64(taxonomy.size());
  for (TypeId t = 0; t < taxonomy.size(); ++t) {
    writer.WriteString(taxonomy.TypeName(t));
    writer.WriteU32(taxonomy.Parent(t));
  }

  // ---- Entities -------------------------------------------------------------
  const EntityRepository& entities = kb.entities();
  writer.WriteU64(entities.size());
  for (EntityId e = 0; e < entities.size(); ++e) {
    const Entity& entity = entities.Get(e);
    writer.WriteString(entity.canonical_name);
    writer.WriteVector(entity.types);
  }

  // ---- Dictionary anchors -----------------------------------------------------
  std::vector<Dictionary::AnchorRecord> anchors =
      kb.dictionary().ExportAnchors();
  writer.WriteU64(anchors.size());
  for (const Dictionary::AnchorRecord& record : anchors) {
    writer.WriteString(record.name);
    writer.WriteU32(record.entity);
    writer.WriteU64(record.count);
  }

  // ---- Keyphrases ---------------------------------------------------------------
  const KeyphraseStore& store = kb.keyphrases();
  // Phrase vocabulary as text; per-entity (phrase id, count) pairs.
  writer.WriteU64(store.phrase_count());
  for (PhraseId p = 0; p < store.phrase_count(); ++p) {
    writer.WriteString(store.PhraseText(p));
  }
  writer.WriteU64(entities.size());
  for (EntityId e = 0; e < entities.size(); ++e) {
    const std::span<const PhraseId> phrases = store.EntityPhrases(e);
    writer.WriteU64(phrases.size());
    for (PhraseId p : phrases) {
      writer.WriteU32(p);
      writer.WriteU32(store.EntityPhraseCount(e, p));
    }
  }

  // ---- Links ------------------------------------------------------------------
  const LinkGraph& links = kb.links();
  writer.WriteU64(links.link_count());
  for (EntityId e = 0; e < entities.size(); ++e) {
    for (EntityId target : links.OutLinks(e)) {
      writer.WriteU32(e);
      writer.WriteU32(target);
    }
  }

  return std::move(writer).TakeBuffer();
}

util::StatusOr<std::unique_ptr<KnowledgeBase>> DeserializeKnowledgeBase(
    std::string_view data) {
  if (flat::LooksLikeFlatSnapshot(data)) {
    return flat::LoadFlatSnapshotFromString(data);
  }
  util::BinaryReader reader(data);
  uint32_t magic = 0;
  uint32_t version = 0;
  util::Status st = reader.ReadU32(&magic);
  if (!st.ok()) return st;
  if (magic != kMagic) {
    return util::Status::InvalidArgument("not a serialized knowledge base");
  }
  st = reader.ReadU32(&version);
  if (!st.ok()) return st;
  if (version != kVersion) {
    return util::Status::InvalidArgument("unsupported format version");
  }

  KbBuilder builder;

  // ---- Taxonomy -----------------------------------------------------------
  uint64_t type_count = 0;
  st = reader.ReadU64(&type_count);
  if (!st.ok()) return st;
  std::unordered_set<std::string> seen_type_names;
  for (uint64_t t = 0; t < type_count; ++t) {
    std::string name;
    uint32_t parent = kNoType;
    st = reader.ReadString(&name);
    if (!st.ok()) return st;
    st = reader.ReadU32(&parent);
    if (!st.ok()) return st;
    if (parent != kNoType && parent >= t) {
      return util::Status::InvalidArgument("taxonomy parent out of order");
    }
    if (!seen_type_names.insert(name).second) {
      return util::Status::InvalidArgument("duplicate type name: " + name);
    }
    builder.AddType(std::move(name), parent);
  }

  // ---- Entities -------------------------------------------------------------
  uint64_t entity_count = 0;
  st = reader.ReadU64(&entity_count);
  if (!st.ok()) return st;
  std::unordered_set<std::string> seen_entity_names;
  for (uint64_t e = 0; e < entity_count; ++e) {
    std::string name;
    std::vector<TypeId> types;
    st = reader.ReadString(&name);
    if (!st.ok()) return st;
    st = reader.ReadVector(&types);
    if (!st.ok()) return st;
    if (!seen_entity_names.insert(name).second) {
      return util::Status::InvalidArgument("duplicate entity name: " + name);
    }
    EntityId id = builder.AddEntity(std::move(name));
    for (TypeId t : types) {
      if (t >= type_count) {
        return util::Status::InvalidArgument("entity type out of range");
      }
      builder.AssignType(id, t);
    }
  }

  // ---- Anchors ------------------------------------------------------------------
  uint64_t anchor_count = 0;
  st = reader.ReadU64(&anchor_count);
  if (!st.ok()) return st;
  for (uint64_t a = 0; a < anchor_count; ++a) {
    std::string name;
    uint32_t entity = kNoEntity;
    uint64_t count = 0;
    st = reader.ReadString(&name);
    if (!st.ok()) return st;
    st = reader.ReadU32(&entity);
    if (!st.ok()) return st;
    st = reader.ReadU64(&count);
    if (!st.ok()) return st;
    if (entity >= entity_count) {
      return util::Status::InvalidArgument("anchor entity out of range");
    }
    builder.AddName(name, entity, count);
  }

  // ---- Keyphrases ---------------------------------------------------------------
  uint64_t phrase_count = 0;
  st = reader.ReadU64(&phrase_count);
  if (!st.ok()) return st;
  // Every phrase costs at least its 8-byte length prefix; a count beyond
  // that bound is a corrupt header and must not reach reserve().
  if (phrase_count > reader.Remaining() / sizeof(uint64_t)) {
    return util::Status::InvalidArgument("phrase count exceeds payload");
  }
  std::vector<std::string> phrase_texts;
  phrase_texts.reserve(phrase_count);
  for (uint64_t p = 0; p < phrase_count; ++p) {
    std::string text;
    st = reader.ReadString(&text);
    if (!st.ok()) return st;
    // KeyphraseStore interns on space-split words and checks the result is
    // non-empty; an all-space phrase would trip that internal invariant.
    if (!HasVisibleWord(text)) {
      return util::Status::InvalidArgument("empty keyphrase text");
    }
    phrase_texts.push_back(std::move(text));
  }
  uint64_t phrase_entities = 0;
  st = reader.ReadU64(&phrase_entities);
  if (!st.ok()) return st;
  if (phrase_entities != entity_count) {
    return util::Status::InvalidArgument("entity count mismatch");
  }
  for (uint64_t e = 0; e < entity_count; ++e) {
    uint64_t n = 0;
    st = reader.ReadU64(&n);
    if (!st.ok()) return st;
    for (uint64_t i = 0; i < n; ++i) {
      uint32_t phrase = 0;
      uint32_t count = 0;
      st = reader.ReadU32(&phrase);
      if (!st.ok()) return st;
      st = reader.ReadU32(&count);
      if (!st.ok()) return st;
      if (phrase >= phrase_count) {
        return util::Status::InvalidArgument("phrase id out of range");
      }
      builder.AddKeyphrase(static_cast<EntityId>(e), phrase_texts[phrase],
                           count);
    }
  }

  // ---- Links ------------------------------------------------------------------
  uint64_t link_count = 0;
  st = reader.ReadU64(&link_count);
  if (!st.ok()) return st;
  for (uint64_t l = 0; l < link_count; ++l) {
    uint32_t source = 0;
    uint32_t target = 0;
    st = reader.ReadU32(&source);
    if (!st.ok()) return st;
    st = reader.ReadU32(&target);
    if (!st.ok()) return st;
    if (source >= entity_count || target >= entity_count) {
      return util::Status::InvalidArgument("link endpoint out of range");
    }
    builder.AddLink(source, target);
  }

  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument("trailing bytes after payload");
  }
  return std::move(builder).Build();
}

util::Status SaveKnowledgeBase(const KnowledgeBase& kb,
                               const std::string& path) {
  return util::WriteFile(path, SerializeKnowledgeBase(kb));
}

util::StatusOr<std::unique_ptr<KnowledgeBase>> LoadKnowledgeBase(
    const std::string& path) {
  // Sniff the magic so flat snapshots take the zero-copy mmap path instead
  // of being read into a string and copied again.
  {
    flat::MagicProbe probe = flat::ProbeFileMagic(path);
    if (probe == flat::MagicProbe::kFlat) return flat::LoadFlatSnapshot(path);
  }
  util::StatusOr<std::string> data = util::ReadFile(path);
  if (!data.ok()) return data.status();
  return DeserializeKnowledgeBase(*data);
}

}  // namespace aida::kb
