#include "kb/entity.h"

#include "util/status.h"

namespace aida::kb {

EntityId EntityRepository::Add(std::string canonical_name) {
  AIDA_CHECK(by_name_.find(canonical_name) == by_name_.end());
  EntityId id = static_cast<EntityId>(entities_.size());
  Entity e;
  e.id = id;
  e.canonical_name = std::move(canonical_name);
  by_name_.emplace(e.canonical_name, id);
  entities_.push_back(std::move(e));
  return id;
}

const Entity& EntityRepository::Get(EntityId id) const {
  AIDA_DCHECK(id < entities_.size());
  return entities_[id];
}

Entity& EntityRepository::GetMutable(EntityId id) {
  AIDA_DCHECK(id < entities_.size());
  return entities_[id];
}

EntityId EntityRepository::FindByName(
    const std::string& canonical_name) const {
  auto it = by_name_.find(canonical_name);
  return it == by_name_.end() ? kNoEntity : it->second;
}

}  // namespace aida::kb
