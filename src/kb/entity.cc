#include "kb/entity.h"

#include "util/check.h"

namespace aida::kb {

EntityId EntityRepository::Add(std::string canonical_name) {
  AIDA_CHECK(by_name_.find(canonical_name) == by_name_.end(),
             "duplicate canonical entity name '%s'", canonical_name.c_str());
  EntityId id = static_cast<EntityId>(entities_.size());
  Entity e;
  e.id = id;
  e.canonical_name = std::move(canonical_name);
  by_name_.emplace(e.canonical_name, id);
  entities_.push_back(std::move(e));
  return id;
}

const Entity& EntityRepository::Get(EntityId id) const {
  AIDA_DCHECK(id < entities_.size(), "entity id %u out of range (%zu)", id,
              entities_.size());
  return entities_[id];
}

Entity& EntityRepository::GetMutable(EntityId id) {
  AIDA_DCHECK(id < entities_.size(), "entity id %u out of range (%zu)", id,
              entities_.size());
  return entities_[id];
}

EntityId EntityRepository::FindByName(
    const std::string& canonical_name) const {
  auto it = by_name_.find(canonical_name);
  return it == by_name_.end() ? kNoEntity : it->second;
}

}  // namespace aida::kb
