#ifndef AIDA_KB_LINK_GRAPH_H_
#define AIDA_KB_LINK_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "kb/entity.h"
#include "util/check.h"
#include "util/function_effects.h"
#include "util/lifetime.h"

namespace aida::kb {

/// Directed entity-entity link structure, mirroring Wikipedia's article
/// links. The Milne-Witten relatedness measure (Eq. 3.7) and the keyword
/// superdocuments (Section 3.3.4) are both defined over in-link sets.
///
/// After Finalize() the adjacency lives in CSR form (one offsets array +
/// one targets array per direction) and every query reads through raw
/// pointer views. The views either point at heap arrays owned by this
/// object or — for a graph adopted from a flat snapshot — straight into
/// an mmap'd file; the query path is identical in both cases.
class AIDA_OWNER_TYPE LinkGraph {
 public:
  /// Creates a graph over `entity_count` entities with no links.
  explicit LinkGraph(size_t entity_count);

  /// Adds a link from `source`'s page to `target`'s page. Duplicate edges
  /// are collapsed at Finalize().
  void AddLink(EntityId source, EntityId target);

  /// Sorts and deduplicates adjacency lists into CSR arrays. Must be
  /// called before any query; additional AddLink calls after Finalize are
  /// a programmer error.
  void Finalize();

  /// Entities whose pages link to `entity` (sorted, unique).
  /// The CSR read API carries AIDA_NONBLOCKING: two offset loads and a
  /// span construction over flat (possibly mmap'd) arrays — the
  /// relatedness kernels call these per candidate pair, so nothing here
  /// may ever reach a lock or the allocator.
  std::span<const EntityId> InLinks(EntityId entity) const
      AIDA_LIFETIME_BOUND AIDA_NONBLOCKING {
    AIDA_DCHECK(finalized_);
    AIDA_DCHECK(entity < view_.entity_count);
    return Row(view_.in_offsets, view_.in_targets, entity);
  }

  /// Entities that `entity`'s page links to (sorted, unique).
  std::span<const EntityId> OutLinks(EntityId entity) const
      AIDA_LIFETIME_BOUND AIDA_NONBLOCKING {
    AIDA_DCHECK(finalized_);
    AIDA_DCHECK(entity < view_.entity_count);
    return Row(view_.out_offsets, view_.out_targets, entity);
  }

  size_t InLinkCount(EntityId entity) const AIDA_NONBLOCKING {
    return InLinks(entity).size();
  }

  /// |InLinks(a) ∩ InLinks(b)| via sorted-list intersection.
  size_t SharedInLinkCount(EntityId a, EntityId b) const AIDA_NONBLOCKING;

  size_t entity_count() const {
    return finalized_ ? static_cast<size_t>(view_.entity_count)
                      : build_in_.size();
  }

  /// Total number of directed links (deduplicated once finalized).
  size_t link_count() const;

  bool finalized() const { return finalized_; }

  /// Internal (kb/flat): the raw CSR arrays behind the query API. Offsets
  /// arrays hold entity_count + 1 entries.
  struct AIDA_VIEW_TYPE FlatView {
    const uint64_t* in_offsets = nullptr;
    const EntityId* in_targets = nullptr;
    const uint64_t* out_offsets = nullptr;
    const EntityId* out_targets = nullptr;
    uint64_t entity_count = 0;
  };

  /// Internal (kb/flat): adopts already-validated CSR arrays (typically
  /// inside an mmap'd snapshot) without copying. The pointed-to storage
  /// must outlive the graph; the flat loader pins the mapping on the
  /// owning KnowledgeBase.
  static std::unique_ptr<LinkGraph> FromFlat(const FlatView& view);

  /// Internal (kb/flat): valid after Finalize(); the snapshot writer
  /// serializes these arrays verbatim.
  const FlatView& flat_view() const AIDA_LIFETIME_BOUND {
    AIDA_DCHECK(finalized_);
    return view_;
  }

 private:
  LinkGraph() = default;

  static std::span<const EntityId> Row(const uint64_t* offsets,
                                       const EntityId* targets,
                                       EntityId entity) AIDA_NONBLOCKING {
    const uint64_t begin = offsets[entity];
    return {targets + begin, static_cast<size_t>(offsets[entity + 1] - begin)};
  }

  // Build-time adjacency; cleared by Finalize().
  std::vector<std::vector<EntityId>> build_in_;
  std::vector<std::vector<EntityId>> build_out_;

  // Owned CSR storage (heap-backed graphs); unused for flat-adopted ones.
  std::vector<uint64_t> owned_in_offsets_;
  std::vector<EntityId> owned_in_targets_;
  std::vector<uint64_t> owned_out_offsets_;
  std::vector<EntityId> owned_out_targets_;

  FlatView view_;
  bool finalized_ = false;
};

}  // namespace aida::kb

#endif  // AIDA_KB_LINK_GRAPH_H_
