#ifndef AIDA_KB_LINK_GRAPH_H_
#define AIDA_KB_LINK_GRAPH_H_

#include <cstddef>
#include <vector>

#include "kb/entity.h"

namespace aida::kb {

/// Directed entity-entity link structure, mirroring Wikipedia's article
/// links. The Milne-Witten relatedness measure (Eq. 3.7) and the keyword
/// superdocuments (Section 3.3.4) are both defined over in-link sets.
class LinkGraph {
 public:
  /// Creates a graph over `entity_count` entities with no links.
  explicit LinkGraph(size_t entity_count);

  /// Adds a link from `source`'s page to `target`'s page. Duplicate edges
  /// are collapsed at Finalize().
  void AddLink(EntityId source, EntityId target);

  /// Sorts and deduplicates adjacency lists. Must be called before any
  /// query; additional AddLink calls after Finalize are a programmer error.
  void Finalize();

  /// Entities whose pages link to `entity` (sorted, unique).
  const std::vector<EntityId>& InLinks(EntityId entity) const;

  /// Entities that `entity`'s page links to (sorted, unique).
  const std::vector<EntityId>& OutLinks(EntityId entity) const;

  size_t InLinkCount(EntityId entity) const {
    return InLinks(entity).size();
  }

  /// |InLinks(a) ∩ InLinks(b)| via sorted-list intersection.
  size_t SharedInLinkCount(EntityId a, EntityId b) const;

  size_t entity_count() const { return in_.size(); }

  /// Total number of directed links.
  size_t link_count() const;

  bool finalized() const { return finalized_; }

 private:
  std::vector<std::vector<EntityId>> in_;
  std::vector<std::vector<EntityId>> out_;
  bool finalized_ = false;
};

}  // namespace aida::kb

#endif  // AIDA_KB_LINK_GRAPH_H_
