#ifndef AIDA_KB_KB_SERIALIZATION_H_
#define AIDA_KB_KB_SERIALIZATION_H_

#include <memory>
#include <string>
#include <string_view>

#include "kb/knowledge_base.h"
#include "util/status.h"

namespace aida::kb {

/// Serializes a knowledge base into a self-contained binary buffer. Only
/// the source facts are stored (entities, anchors, keyphrases, links,
/// taxonomy); all derived statistics (IDF, NPMI, MI weights) are
/// recomputed deterministically on load, so the format stays stable as
/// weighting schemes evolve.
std::string SerializeKnowledgeBase(const KnowledgeBase& kb);

/// Reconstructs a knowledge base from a buffer produced by
/// SerializeKnowledgeBase — or, detected by magic prefix, from a flat
/// snapshot (kb/flat/flat_snapshot.h), in which case the buffer is copied
/// into aligned storage first. Fails cleanly on truncated or corrupt
/// input.
util::StatusOr<std::unique_ptr<KnowledgeBase>> DeserializeKnowledgeBase(
    std::string_view data);

/// Convenience: serialize to / load from a file. LoadKnowledgeBase
/// dispatches on the magic prefix: flat snapshots are mmap'd and served
/// zero-copy, v1 record streams are parsed and rebuilt. SnapshotRegistry
/// reloads therefore publish either format transparently.
util::Status SaveKnowledgeBase(const KnowledgeBase& kb,
                               const std::string& path);
util::StatusOr<std::unique_ptr<KnowledgeBase>> LoadKnowledgeBase(
    const std::string& path);

}  // namespace aida::kb

#endif  // AIDA_KB_KB_SERIALIZATION_H_
