#ifndef AIDA_KB_TYPE_TAXONOMY_H_
#define AIDA_KB_TYPE_TAXONOMY_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kb/entity.h"
#include "util/lifetime.h"

namespace aida::kb {

/// YAGO-style class hierarchy: a forest of named types with subclass-of
/// edges. Used by the Cucerzan-style baseline (category context expansion)
/// and by the "cats" dimension of the entity search application (ch. 6).
class TypeTaxonomy {
 public:
  /// Adds a type under `parent` (kNoType for a root). Names are unique.
  TypeId AddType(std::string name, TypeId parent = kNoType);

  /// Looks up a type by name; kNoType when absent.
  TypeId FindType(std::string_view name) const;

  const std::string& TypeName(TypeId t) const AIDA_LIFETIME_BOUND;
  TypeId Parent(TypeId t) const;

  /// `t` and all its ancestors up to the root, nearest first.
  std::vector<TypeId> AncestorsInclusive(TypeId t) const;

  /// True if `descendant` equals `ancestor` or lies below it.
  bool IsSubtypeOf(TypeId descendant, TypeId ancestor) const;

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<TypeId> parents_;
  std::unordered_map<std::string, TypeId> by_name_;
};

}  // namespace aida::kb

#endif  // AIDA_KB_TYPE_TAXONOMY_H_
