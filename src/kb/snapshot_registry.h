#ifndef AIDA_KB_SNAPSHOT_REGISTRY_H_
#define AIDA_KB_SNAPSHOT_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/aida.h"
#include "core/ned_system.h"
#include "core/relatedness_cache.h"
#include "kb/knowledge_base.h"
#include "util/function_effects.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace aida::kb {

class KbSnapshot;

/// How a snapshot assembles its disambiguation stack from a loaded
/// knowledge base. The defaults reproduce the canonical serving setup:
/// Milne-Witten relatedness behind a per-snapshot RelatednessCache,
/// driving a full Aida system. Factories let callers swap in KORE / LSH
/// measures or an entirely different NedSystem (baselines, test doubles)
/// without bypassing the snapshot lifecycle.
struct SnapshotOptions {
  /// Builds the base relatedness measure over the snapshot's KB. When
  /// null, MilneWittenRelatedness is used.
  std::function<std::unique_ptr<core::RelatednessMeasure>(
      const KnowledgeBase& kb)>
      relatedness_factory;
  /// Builds the NED system over the snapshot's candidate models and its
  /// (cache-decorated) relatedness measure. When null, core::Aida with
  /// `aida` options is used.
  std::function<std::unique_ptr<core::NedSystem>(
      const core::CandidateModelStore* models,
      const core::RelatednessMeasure* relatedness)>
      system_factory;
  /// Options for the default Aida system (ignored when system_factory is
  /// set).
  core::AidaOptions aida;
  /// Sizing of the per-snapshot relatedness cache. Each generation gets a
  /// fresh cache: entity ids are only stable within one KB build, so
  /// carrying cached pair values across generations would serve values
  /// computed against a different link graph.
  core::RelatednessCacheOptions cache;
};

/// One immutable, generation-numbered knowledge-base snapshot: the KB
/// itself plus every derived serving structure built over it — candidate
/// model store (dictionary/keyphrase views), per-snapshot relatedness
/// cache, cache-decorated relatedness measure, and the NED system that
/// serves requests against this generation. All members are constructed
/// together and destruct together, so a request that pins the snapshot
/// via shared_ptr can use any part of the stack without lifetime checks.
///
/// Snapshots are created by SnapshotRegistry (or the static factories
/// below) and are immutable afterwards; sharing one across threads needs
/// no synchronization beyond the shared_ptr itself.
class KbSnapshot {
 public:
  /// Builds a full snapshot over `kb`. Fails (without side effects) when
  /// the KB does not pass ValidateKnowledgeBase.
  static util::StatusOr<std::shared_ptr<const KbSnapshot>> Create(
      std::shared_ptr<const KnowledgeBase> kb, uint64_t generation,
      std::string source, const SnapshotOptions& options = {});

  /// Wraps an externally owned NED system (no KB, no cache) so services
  /// and tests can use the snapshot API with custom systems. The snapshot
  /// shares ownership of `system`.
  static std::shared_ptr<const KbSnapshot> WrapSystem(
      std::shared_ptr<const core::NedSystem> system, std::string source,
      uint64_t generation = 1);

  /// Like WrapSystem for a system the caller keeps owning; `system` must
  /// outlive every holder of the returned snapshot.
  static std::shared_ptr<const KbSnapshot> WrapUnowned(
      const core::NedSystem& system, std::string source,
      uint64_t generation = 1);

  /// Monotonic generation number; assigned by the registry at publish
  /// time (1 for the first generation).
  uint64_t generation() const { return generation_; }

  /// Human-readable provenance ("file:/path/world.kb", "builder:regrow",
  /// ...), for logs and service introspection.
  const std::string& source() const { return source_; }

  /// False for wrapped systems without a KB.
  bool has_knowledge_base() const { return kb_ != nullptr; }
  const KnowledgeBase& knowledge_base() const { return *kb_; }

  /// Convenience views into the snapshot's KB (valid only when
  /// has_knowledge_base()).
  const Dictionary& dictionary() const { return kb_->dictionary(); }
  const KeyphraseStore& keyphrases() const { return kb_->keyphrases(); }
  const LinkGraph& links() const { return kb_->links(); }

  /// Null for wrapped systems.
  const core::CandidateModelStore* models() const { return models_.get(); }
  const core::RelatednessCache* relatedness_cache() const {
    return cache_.get();
  }

  /// The NED system serving this generation. Never null.
  const core::NedSystem& system() const { return *system_; }

 private:
  KbSnapshot() = default;

  // Declaration order is construction order and reverse destruction
  // order: the system references the measure, the measure references the
  // cache and KB, the models reference the KB.
  std::shared_ptr<const KnowledgeBase> kb_;
  std::unique_ptr<const core::CandidateModelStore> models_;
  std::unique_ptr<core::RelatednessCache> cache_;
  std::unique_ptr<const core::RelatednessMeasure> base_measure_;
  std::unique_ptr<const core::CachedRelatednessMeasure> cached_measure_;
  std::shared_ptr<const core::NedSystem> system_;
  uint64_t generation_ = 0;
  std::string source_;
};

/// Structural sanity checks a KB must pass before it can be published:
/// non-null, at least one entity, and a dictionary that resolves at least
/// one name to a valid entity id. Catches the realistic failure modes of
/// hot reload — an empty builder result, a file from a different corpus
/// whose sections deserialized but describe nothing servable.
util::Status ValidateKnowledgeBase(const KnowledgeBase* kb);

/// Point-in-time registry statistics, returned by value.
struct SnapshotRegistryStats {
  /// Generation currently served (0 before the first publish).
  uint64_t active_generation = 0;
  /// Source string of the active snapshot.
  std::string active_source;
  /// Older generations still alive because in-flight requests pin them.
  std::vector<uint64_t> retiring_generations;
  /// Successful publishes, including the first.
  uint64_t publishes = 0;
  /// Successful reloads (publishes after the first).
  uint64_t reloads = 0;
  /// Publish/reload attempts rejected by validation or load errors; the
  /// previously active snapshot kept serving through each failure.
  uint64_t reload_failures = 0;
  /// Wall-clock duration of the most recent successful publish (build +
  /// validate + swap), and the sum over all of them.
  double last_reload_seconds = 0.0;
  double total_reload_seconds = 0.0;
};

/// RCU-style publication point for KbSnapshot generations.
///
/// Readers (serving threads) call Current() — one atomic shared_ptr load,
/// no lock — and pin the returned snapshot for the duration of a request;
/// a generation's heap footprint is freed when the registry has moved on
/// AND the last pinned request drops its handle. Writers (reload paths)
/// serialize on an internal mutex, build and validate the incoming KB
/// completely before the swap, and leave the active snapshot untouched on
/// any failure — a bad reload is observable only as a bumped
/// reload_failures counter.
class SnapshotRegistry {
 public:
  explicit SnapshotRegistry(SnapshotOptions options = {});

  /// Builds a snapshot over `kb` and atomically makes it the current
  /// generation. Returns the published snapshot.
  util::StatusOr<std::shared_ptr<const KbSnapshot>> Publish(
      std::shared_ptr<const KnowledgeBase> kb, std::string source)
      AIDA_EXCLUDES(publish_mutex_);

  /// Publishes a snapshot wrapping an externally built NED system (test
  /// doubles, custom stacks). Skips KB validation — there is no KB.
  std::shared_ptr<const KbSnapshot> PublishSystem(
      std::shared_ptr<const core::NedSystem> system, std::string source)
      AIDA_EXCLUDES(publish_mutex_);

  /// Reload from a serialized KB file (SaveKnowledgeBase format).
  util::StatusOr<std::shared_ptr<const KbSnapshot>> ReloadFromFile(
      const std::string& path) AIDA_EXCLUDES(publish_mutex_);

  /// Reload from an in-process builder callback (WorldGenerator regrowth,
  /// NED-EE harvest merge, ...). The callback runs outside the hot path
  /// but under the publish lock, serializing concurrent reloads.
  util::StatusOr<std::shared_ptr<const KbSnapshot>> ReloadFromBuilder(
      const std::function<util::StatusOr<std::unique_ptr<KnowledgeBase>>()>&
          builder,
      std::string source) AIDA_EXCLUDES(publish_mutex_);

  /// The currently published snapshot; null before the first publish.
  /// One atomic load — wait-free, safe from any thread.
  std::shared_ptr<const KbSnapshot> Current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Generation number of the currently published snapshot (0 before the
  /// first publish) as one relaxed uint64 load — the cheap "did anything
  /// change?" probe of the serving hot path. Unlike Current(), this never
  /// touches the shared_ptr control block, so workers polling it on every
  /// dequeue do not ping-pong a refcount cache line between cores; they
  /// call Current() (and pay the acquire + refcount) only when the value
  /// moved. The counter is stored after current_, so a reader that
  /// observes generation G is guaranteed to get generation >= G from
  /// Current().
  uint64_t current_generation() const AIDA_NONBLOCKING {
    return current_generation_.load(std::memory_order_relaxed);
  }

  SnapshotRegistryStats Stats() const AIDA_EXCLUDES(publish_mutex_);

 private:
  /// Builds, validates, and swaps in a snapshot; the caller holds the
  /// publish lock for the whole build-validate-swap sequence (the
  /// requirement the old pass-the-unique_lock parameter expressed by
  /// convention is now compile-time checked).
  util::StatusOr<std::shared_ptr<const KbSnapshot>> PublishLocked(
      std::shared_ptr<const KnowledgeBase> kb, std::string source,
      double build_seconds_so_far) AIDA_REQUIRES(publish_mutex_);

  /// Drops history entries whose snapshots have fully died.
  void CompactHistoryLocked() AIDA_REQUIRES(publish_mutex_);

  SnapshotOptions options_;
  std::atomic<std::shared_ptr<const KbSnapshot>> current_{nullptr};
  /// Mirrors current_->generation(); see current_generation().
  std::atomic<uint64_t> current_generation_{0};

  /// Serializes publishes/reloads; readers never take it (Current() is
  /// one atomic load). Ranked after the service stop lock so a service
  /// owner may reload while stopping, never the reverse.
  mutable util::Mutex publish_mutex_{util::lock_rank::kSnapshotPublish};
  uint64_t next_generation_ AIDA_GUARDED_BY(publish_mutex_) = 1;
  uint64_t publishes_ AIDA_GUARDED_BY(publish_mutex_) = 0;
  uint64_t reload_failures_ AIDA_GUARDED_BY(publish_mutex_) = 0;
  double last_reload_seconds_ AIDA_GUARDED_BY(publish_mutex_) = 0.0;
  double total_reload_seconds_ AIDA_GUARDED_BY(publish_mutex_) = 0.0;
  /// Weak handles to every generation ever published, compacted as they
  /// die; used to report retiring generations still pinned by requests.
  std::vector<std::pair<uint64_t, std::weak_ptr<const KbSnapshot>>>
      history_ AIDA_GUARDED_BY(publish_mutex_);
};

}  // namespace aida::kb

#endif  // AIDA_KB_SNAPSHOT_REGISTRY_H_
