#ifndef AIDA_KB_KEYPHRASE_STORE_H_
#define AIDA_KB_KEYPHRASE_STORE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kb/entity.h"
#include "kb/link_graph.h"

namespace aida::kb {

/// Interns keyphrases (multi-word) and keywords (single tokens), associates
/// them with entities, and computes the statistical weights AIDA and KORE
/// rely on:
///
///  * keyword IDF and keyphrase IDF (Eq. 3.5),
///  * per-entity keyword NPMI (Eqs. 3.1-3.3) over "superdocuments"
///    (an entity's keyphrases plus those of all entities linking to it),
///  * per-entity keyphrase normalized MI "mu" (Eq. 4.1).
///
/// Phrases are stored as sequences of word ids; equal word sequences share
/// one PhraseId.
class KeyphraseStore {
 public:
  /// Interns a word; repeated calls with the same text return the same id.
  WordId InternWord(std::string_view word);

  /// Interns a phrase given as word ids.
  PhraseId InternPhrase(const std::vector<WordId>& words);

  /// Convenience: interns a phrase given as space-separated text.
  PhraseId InternPhraseText(std::string_view text);

  /// Associates `phrase` with `entity` (`count` co-occurrences).
  void AddEntityPhrase(EntityId entity, PhraseId phrase, uint32_t count = 1);

  /// Computes document frequencies and all weights. `links` supplies the
  /// in-link sets for superdocuments; `entity_count` fixes the collection
  /// size N. Must be called before any weight query.
  void Finalize(const LinkGraph& links, size_t entity_count);

  // ---- Vocabulary access -------------------------------------------------

  size_t word_count() const { return words_.size(); }
  size_t phrase_count() const { return phrases_.size(); }
  const std::string& WordText(WordId w) const;
  const std::vector<WordId>& PhraseWords(PhraseId p) const;
  /// Space-joined surface text of a phrase.
  std::string PhraseText(PhraseId p) const;
  /// Looks up an existing word; kNoWord when unknown.
  WordId FindWord(std::string_view word) const;

  // ---- Entity associations ----------------------------------------------

  /// Phrase ids associated with `entity` (order of insertion, deduped).
  const std::vector<PhraseId>& EntityPhrases(EntityId entity) const;

  /// Distinct keyword ids appearing in any of `entity`'s phrases.
  const std::vector<WordId>& EntityWords(EntityId entity) const;

  /// Co-occurrence count of `p` with `entity` (0 when not associated).
  uint32_t EntityPhraseCount(EntityId entity, PhraseId p) const;

  /// Number of entities whose phrase set contains `p`.
  uint32_t PhraseDf(PhraseId p) const;

  /// Number of entities having at least one phrase containing `w`.
  uint32_t WordDf(WordId w) const;

  // ---- Weights (valid after Finalize) -------------------------------------

  /// log2(N / df) keyword IDF; 0 for unseen words.
  double WordIdf(WordId w) const;

  /// log2(N / df) keyphrase IDF.
  double PhraseIdf(PhraseId p) const;

  /// Per-entity keyword specificity weight npmi(e, w) (Eq. 3.1), clipped at
  /// zero (non-positive weights are discarded by the paper). Returns 0 for
  /// words outside the entity's superdocument.
  double KeywordNpmi(EntityId e, WordId w) const;

  /// Per-entity keyphrase weight mu(e, p) (Eq. 4.1).
  double PhraseMi(EntityId e, PhraseId p) const;

  bool finalized() const { return finalized_; }
  size_t collection_size() const { return collection_size_; }

 private:
  struct EntityData {
    std::vector<PhraseId> phrases;
    std::vector<uint32_t> phrase_counts;  // parallel to `phrases`
    std::vector<WordId> words;            // distinct, sorted
    // Weight tables computed at Finalize, parallel to phrases/words.
    std::vector<double> phrase_mi;
    std::vector<double> word_npmi;
  };

  EntityData& DataFor(EntityId entity);
  const EntityData* DataOrNull(EntityId entity) const;
  /// Index of `p` in EntityPhrases(e), or npos.
  static size_t IndexOf(const std::vector<PhraseId>& v, PhraseId p);

  std::vector<std::string> words_;
  std::unordered_map<std::string, WordId> word_ids_;
  std::vector<std::vector<WordId>> phrases_;
  std::unordered_map<std::string, PhraseId> phrase_keys_;

  std::vector<EntityData> entities_;

  std::vector<uint32_t> phrase_df_;
  std::vector<uint32_t> word_df_;
  size_t collection_size_ = 0;
  bool finalized_ = false;
};

}  // namespace aida::kb

#endif  // AIDA_KB_KEYPHRASE_STORE_H_
