#ifndef AIDA_KB_KEYPHRASE_STORE_H_
#define AIDA_KB_KEYPHRASE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kb/entity.h"
#include "kb/flat/flat_hash.h"
#include "util/function_effects.h"
#include "kb/link_graph.h"
#include "util/lifetime.h"

namespace aida::kb {

/// Interns keyphrases (multi-word) and keywords (single tokens), associates
/// them with entities, and computes the statistical weights AIDA and KORE
/// rely on:
///
///  * keyword IDF and keyphrase IDF (Eq. 3.5),
///  * per-entity keyword NPMI (Eqs. 3.1-3.3) over "superdocuments"
///    (an entity's keyphrases plus those of all entities linking to it),
///  * per-entity keyphrase normalized MI "mu" (Eq. 4.1).
///
/// Phrases are stored as sequences of word ids; equal word sequences share
/// one PhraseId.
///
/// Two lifecycle phases: while building, facts accumulate in node-based
/// containers; Finalize() computes all weights and flattens everything
/// into struct-of-arrays storage (offset-indexed string pool, CSR phrase
/// and entity associations, a flat open-addressing word table). Queries
/// read through raw-pointer views that target either the owned arrays or
/// an mmap'd flat snapshot — the same query code serves both backends.
class AIDA_OWNER_TYPE KeyphraseStore {
 public:
  KeyphraseStore() = default;

  /// Interns a word; repeated calls with the same text return the same id.
  /// Build phase only.
  WordId InternWord(std::string_view word);

  /// Interns a phrase given as word ids. Build phase only.
  PhraseId InternPhrase(const std::vector<WordId>& words);

  /// Convenience: interns a phrase given as space-separated text.
  PhraseId InternPhraseText(std::string_view text);

  /// Associates `phrase` with `entity` (`count` co-occurrences).
  void AddEntityPhrase(EntityId entity, PhraseId phrase, uint32_t count = 1);

  /// Computes document frequencies and all weights, then flattens the
  /// store. `links` supplies the in-link sets for superdocuments;
  /// `entity_count` fixes the collection size N. Must be called before
  /// any weight query.
  void Finalize(const LinkGraph& links, size_t entity_count);

  // ---- Vocabulary access -------------------------------------------------

  size_t word_count() const {
    return finalized_ ? static_cast<size_t>(view_.word_count) : words_.size();
  }
  size_t phrase_count() const {
    return finalized_ ? static_cast<size_t>(view_.phrase_count)
                      : phrases_.size();
  }
  std::string_view WordText(WordId w) const AIDA_LIFETIME_BOUND;
  /// The span accessors below carry AIDA_NONBLOCKING: offset loads over
  /// flat (possibly mmap'd) arrays, read per keyphrase-similarity
  /// evaluation on the request path.
  std::span<const WordId> PhraseWords(PhraseId p) const
      AIDA_LIFETIME_BOUND AIDA_NONBLOCKING;
  /// Space-joined surface text of a phrase.
  std::string PhraseText(PhraseId p) const;
  /// Looks up an existing word; kNoWord when unknown.
  WordId FindWord(std::string_view word) const;

  // ---- Entity associations ----------------------------------------------

  /// Phrase ids associated with `entity` (order of insertion, deduped).
  std::span<const PhraseId> EntityPhrases(EntityId entity) const
      AIDA_LIFETIME_BOUND AIDA_NONBLOCKING;

  /// Distinct keyword ids appearing in any of `entity`'s phrases (sorted).
  std::span<const WordId> EntityWords(EntityId entity) const
      AIDA_LIFETIME_BOUND AIDA_NONBLOCKING;

  /// Co-occurrence count of `p` with `entity` (0 when not associated).
  uint32_t EntityPhraseCount(EntityId entity, PhraseId p) const;

  /// Number of entities whose phrase set contains `p`.
  uint32_t PhraseDf(PhraseId p) const;

  /// Number of entities having at least one phrase containing `w`.
  uint32_t WordDf(WordId w) const;

  // ---- Weights (valid after Finalize) -------------------------------------

  /// log2(N / df) keyword IDF; 0 for unseen words.
  double WordIdf(WordId w) const;

  /// log2(N / df) keyphrase IDF.
  double PhraseIdf(PhraseId p) const;

  /// Per-entity keyword specificity weight npmi(e, w) (Eq. 3.1), clipped at
  /// zero (non-positive weights are discarded by the paper). Returns 0 for
  /// words outside the entity's superdocument.
  double KeywordNpmi(EntityId e, WordId w) const;

  /// Per-entity keyphrase weight mu(e, p) (Eq. 4.1).
  double PhraseMi(EntityId e, PhraseId p) const;

  bool finalized() const { return finalized_; }
  size_t collection_size() const {
    return static_cast<size_t>(view_.collection_size);
  }

  // ---- Flat backing (internal, kb/flat) ----------------------------------

  /// The struct-of-arrays storage behind every post-Finalize query. All
  /// offsets arrays have count + 1 entries; `entity_count` rows cover the
  /// entity association arrays.
  struct AIDA_VIEW_TYPE FlatView {
    const uint64_t* word_offsets = nullptr;
    const char* word_pool = nullptr;
    flat::StringHashView word_hash;
    const uint64_t* phrase_word_offsets = nullptr;
    const WordId* phrase_words = nullptr;
    const uint64_t* entity_phrase_offsets = nullptr;
    const PhraseId* entity_phrase_ids = nullptr;
    const uint32_t* entity_phrase_counts = nullptr;
    const double* entity_phrase_mi = nullptr;
    const uint64_t* entity_word_offsets = nullptr;
    const WordId* entity_word_ids = nullptr;
    const double* entity_word_npmi = nullptr;
    const uint32_t* phrase_df = nullptr;
    const uint32_t* word_df = nullptr;
    uint64_t word_count = 0;
    uint64_t phrase_count = 0;
    uint64_t entity_count = 0;
    uint64_t collection_size = 0;
  };

  /// Adopts already-validated flat storage (typically an mmap'd snapshot)
  /// without copying; the storage must outlive the store.
  static std::unique_ptr<KeyphraseStore> FromFlat(const FlatView& view);

  /// Valid after Finalize(); the snapshot writer serializes these arrays.
  const FlatView& flat_view() const AIDA_LIFETIME_BOUND;

 private:
  struct EntityData {
    std::vector<PhraseId> phrases;
    std::vector<uint32_t> phrase_counts;  // parallel to `phrases`
    std::vector<WordId> words;            // distinct, sorted
    // Weight tables computed at Finalize, parallel to phrases/words.
    std::vector<double> phrase_mi;
    std::vector<double> word_npmi;
  };

  EntityData& DataFor(EntityId entity);
  /// Index of `p` in the entity's phrase list, or npos.
  static size_t IndexOf(std::span<const PhraseId> v, PhraseId p);
  /// Moves the build-phase containers into the owned flat arrays and
  /// points view_ at them.
  void FlattenIntoOwned();

  std::string_view WordInPool(uint64_t index) const AIDA_LIFETIME_BOUND {
    const uint64_t begin = view_.word_offsets[index];
    return {view_.word_pool + begin,
            static_cast<size_t>(view_.word_offsets[index + 1] - begin)};
  }

  // ---- Build-phase storage (cleared by Finalize) --------------------------
  std::vector<std::string> words_;
  std::unordered_map<std::string, WordId> word_ids_;
  std::vector<std::vector<WordId>> phrases_;
  std::unordered_map<std::string, PhraseId> phrase_keys_;
  std::vector<EntityData> entities_;

  // ---- Owned flat storage (heap-backed stores) ----------------------------
  std::vector<uint64_t> owned_word_offsets_;
  std::string owned_word_pool_;
  std::vector<uint32_t> owned_word_slots_;
  std::vector<uint64_t> owned_phrase_word_offsets_;
  std::vector<WordId> owned_phrase_words_;
  std::vector<uint64_t> owned_entity_phrase_offsets_;
  std::vector<PhraseId> owned_entity_phrase_ids_;
  std::vector<uint32_t> owned_entity_phrase_counts_;
  std::vector<double> owned_entity_phrase_mi_;
  std::vector<uint64_t> owned_entity_word_offsets_;
  std::vector<WordId> owned_entity_word_ids_;
  std::vector<double> owned_entity_word_npmi_;
  std::vector<uint32_t> phrase_df_;
  std::vector<uint32_t> word_df_;

  FlatView view_;
  bool finalized_ = false;
};

}  // namespace aida::kb

#endif  // AIDA_KB_KEYPHRASE_STORE_H_
