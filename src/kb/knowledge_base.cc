#include "kb/knowledge_base.h"

// KnowledgeBase is a plain aggregate; all behaviour lives in its parts and
// in KbBuilder. This file exists so the target has a translation unit that
// anchors the class (and any future out-of-line members).
