#include "kb/knowledge_base.h"

#include <utility>

namespace aida::kb {

std::unique_ptr<KnowledgeBase> KnowledgeBase::FromParts(Parts parts) {
  auto kb = std::unique_ptr<KnowledgeBase>(new KnowledgeBase());
  kb->entities_ = std::move(parts.entities);
  kb->dictionary_ = std::move(parts.dictionary);
  kb->keyphrases_ = std::move(parts.keyphrases);
  kb->links_ = std::move(parts.links);
  kb->taxonomy_ = std::move(parts.taxonomy);
  kb->backing_ = std::move(parts.backing);
  return kb;
}

}  // namespace aida::kb
