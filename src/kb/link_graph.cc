#include "kb/link_graph.h"

#include <algorithm>
#include <utility>

namespace aida::kb {

namespace {

// Sort-dedup the per-entity build lists into one CSR pair.
void FlattenCsr(std::vector<std::vector<EntityId>>& build,
                std::vector<uint64_t>& offsets,
                std::vector<EntityId>& targets) {
  offsets.clear();
  offsets.reserve(build.size() + 1);
  offsets.push_back(0);
  size_t total = 0;
  for (auto& row : build) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    total += row.size();
    offsets.push_back(total);
  }
  targets.clear();
  targets.reserve(total);
  for (const auto& row : build) {
    targets.insert(targets.end(), row.begin(), row.end());
  }
}

}  // namespace

LinkGraph::LinkGraph(size_t entity_count)
    : build_in_(entity_count), build_out_(entity_count) {}

void LinkGraph::AddLink(EntityId source, EntityId target) {
  AIDA_DCHECK(!finalized_);
  AIDA_DCHECK(source < build_out_.size() && target < build_in_.size());
  if (source == target) return;
  build_out_[source].push_back(target);
  build_in_[target].push_back(source);
}

void LinkGraph::Finalize() {
  AIDA_CHECK(!finalized_, "LinkGraph finalized twice");
  const size_t n = build_in_.size();
  FlattenCsr(build_in_, owned_in_offsets_, owned_in_targets_);
  FlattenCsr(build_out_, owned_out_offsets_, owned_out_targets_);
  std::vector<std::vector<EntityId>>().swap(build_in_);
  std::vector<std::vector<EntityId>>().swap(build_out_);
  view_.in_offsets = owned_in_offsets_.data();
  view_.in_targets = owned_in_targets_.data();
  view_.out_offsets = owned_out_offsets_.data();
  view_.out_targets = owned_out_targets_.data();
  view_.entity_count = n;
  finalized_ = true;
}

std::unique_ptr<LinkGraph> LinkGraph::FromFlat(const FlatView& view) {
  auto graph = std::unique_ptr<LinkGraph>(new LinkGraph());
  graph->view_ = view;
  graph->finalized_ = true;
  return graph;
}

size_t LinkGraph::SharedInLinkCount(EntityId a,
                                    EntityId b) const AIDA_NONBLOCKING {
  const std::span<const EntityId> va = InLinks(a);
  const std::span<const EntityId> vb = InLinks(b);
  size_t i = 0;
  size_t j = 0;
  size_t shared = 0;
  while (i < va.size() && j < vb.size()) {
    if (va[i] < vb[j]) {
      ++i;
    } else if (vb[j] < va[i]) {
      ++j;
    } else {
      ++shared;
      ++i;
      ++j;
    }
  }
  return shared;
}

size_t LinkGraph::link_count() const {
  if (finalized_) {
    return static_cast<size_t>(view_.out_offsets[view_.entity_count]);
  }
  size_t total = 0;
  for (const auto& v : build_out_) total += v.size();
  return total;
}

}  // namespace aida::kb
