#include "kb/link_graph.h"

#include <algorithm>

#include "util/check.h"

namespace aida::kb {

LinkGraph::LinkGraph(size_t entity_count)
    : in_(entity_count), out_(entity_count) {}

void LinkGraph::AddLink(EntityId source, EntityId target) {
  AIDA_DCHECK(!finalized_);
  AIDA_DCHECK(source < out_.size() && target < in_.size());
  if (source == target) return;
  out_[source].push_back(target);
  in_[target].push_back(source);
}

void LinkGraph::Finalize() {
  auto dedup = [](std::vector<EntityId>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  for (auto& v : in_) dedup(v);
  for (auto& v : out_) dedup(v);
  finalized_ = true;
}

const std::vector<EntityId>& LinkGraph::InLinks(EntityId entity) const {
  AIDA_DCHECK(finalized_);
  AIDA_DCHECK(entity < in_.size());
  return in_[entity];
}

const std::vector<EntityId>& LinkGraph::OutLinks(EntityId entity) const {
  AIDA_DCHECK(finalized_);
  AIDA_DCHECK(entity < out_.size());
  return out_[entity];
}

size_t LinkGraph::SharedInLinkCount(EntityId a, EntityId b) const {
  const auto& va = InLinks(a);
  const auto& vb = InLinks(b);
  size_t i = 0;
  size_t j = 0;
  size_t shared = 0;
  while (i < va.size() && j < vb.size()) {
    if (va[i] < vb[j]) {
      ++i;
    } else if (vb[j] < va[i]) {
      ++j;
    } else {
      ++shared;
      ++i;
      ++j;
    }
  }
  return shared;
}

size_t LinkGraph::link_count() const {
  size_t total = 0;
  for (const auto& v : out_) total += v.size();
  return total;
}

}  // namespace aida::kb
