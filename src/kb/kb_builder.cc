#include "kb/kb_builder.h"

namespace aida::kb {

KbBuilder::KbBuilder() : kb_(new KnowledgeBase()) {
  kb_->entities_ = std::make_unique<EntityRepository>();
  kb_->dictionary_ = std::make_unique<Dictionary>();
  kb_->keyphrases_ = std::make_unique<KeyphraseStore>();
  kb_->taxonomy_ = std::make_unique<TypeTaxonomy>();
  // The link graph is sized at Build time, once the entity count is known.
}

EntityId KbBuilder::AddEntity(std::string canonical_name) {
  return kb_->entities_->Add(std::move(canonical_name));
}

void KbBuilder::AddName(std::string_view name, EntityId entity,
                        uint64_t anchor_count) {
  kb_->dictionary_->AddAnchor(name, entity, anchor_count);
  kb_->entities_->GetMutable(entity).anchor_count += anchor_count;
}

PhraseId KbBuilder::AddKeyphrase(EntityId entity,
                                 std::string_view phrase_text,
                                 uint32_t count) {
  PhraseId p = kb_->keyphrases_->InternPhraseText(phrase_text);
  kb_->keyphrases_->AddEntityPhrase(entity, p, count);
  return p;
}

void KbBuilder::AddLink(EntityId source, EntityId target) {
  pending_links_.emplace_back(source, target);
}

TypeId KbBuilder::AddType(std::string name, TypeId parent) {
  return kb_->taxonomy_->AddType(std::move(name), parent);
}

void KbBuilder::AssignType(EntityId entity, TypeId type) {
  kb_->entities_->GetMutable(entity).types.push_back(type);
}

size_t KbBuilder::entity_count() const { return kb_->entities_->size(); }

KeyphraseStore& KbBuilder::keyphrases() { return *kb_->keyphrases_; }

std::unique_ptr<KnowledgeBase> KbBuilder::Build() && {
  const size_t n = kb_->entities_->size();
  kb_->links_ = std::make_unique<LinkGraph>(n);
  for (const auto& [source, target] : pending_links_) {
    kb_->links_->AddLink(source, target);
  }
  kb_->links_->Finalize();
  kb_->keyphrases_->Finalize(*kb_->links_, n);
  kb_->dictionary_->Finalize();
  return std::move(kb_);
}

}  // namespace aida::kb
