#include "kb/snapshot_registry.h"

#include <utility>

#include "core/relatedness.h"
#include "kb/kb_serialization.h"
#include "util/stopwatch.h"

namespace aida::kb {

util::Status ValidateKnowledgeBase(const KnowledgeBase* kb) {
  if (kb == nullptr) {
    return util::Status::InvalidArgument("knowledge base is null");
  }
  if (kb->entity_count() == 0) {
    return util::Status::InvalidArgument("knowledge base has no entities");
  }
  if (kb->dictionary().NameCount() == 0) {
    return util::Status::InvalidArgument(
        "knowledge base dictionary is empty: no mention could ever "
        "resolve to a candidate");
  }
  return util::Status::Ok();
}

util::StatusOr<std::shared_ptr<const KbSnapshot>> KbSnapshot::Create(
    std::shared_ptr<const KnowledgeBase> kb, uint64_t generation,
    std::string source, const SnapshotOptions& options) {
  util::Status valid = ValidateKnowledgeBase(kb.get());
  if (!valid.ok()) return valid;

  auto snapshot = std::shared_ptr<KbSnapshot>(new KbSnapshot());
  snapshot->kb_ = std::move(kb);
  snapshot->generation_ = generation;
  snapshot->source_ = std::move(source);
  snapshot->models_ = std::make_unique<core::CandidateModelStore>(
      snapshot->kb_.get());
  snapshot->cache_ = std::make_unique<core::RelatednessCache>(options.cache);
  snapshot->base_measure_ =
      options.relatedness_factory
          ? options.relatedness_factory(*snapshot->kb_)
          : std::make_unique<core::MilneWittenRelatedness>(
                snapshot->kb_.get());
  if (snapshot->base_measure_ == nullptr) {
    return util::Status::InvalidArgument("relatedness_factory returned null");
  }
  snapshot->cached_measure_ = std::make_unique<core::CachedRelatednessMeasure>(
      snapshot->base_measure_.get(), snapshot->cache_.get());
  std::unique_ptr<core::NedSystem> system =
      options.system_factory
          ? options.system_factory(snapshot->models_.get(),
                                   snapshot->cached_measure_.get())
          : std::make_unique<core::Aida>(snapshot->models_.get(),
                                         snapshot->cached_measure_.get(),
                                         options.aida);
  if (system == nullptr) {
    return util::Status::InvalidArgument("system_factory returned null");
  }
  snapshot->system_ = std::move(system);
  return std::shared_ptr<const KbSnapshot>(std::move(snapshot));
}

std::shared_ptr<const KbSnapshot> KbSnapshot::WrapSystem(
    std::shared_ptr<const core::NedSystem> system, std::string source,
    uint64_t generation) {
  AIDA_CHECK(system != nullptr);
  auto snapshot = std::shared_ptr<KbSnapshot>(new KbSnapshot());
  snapshot->system_ = std::move(system);
  snapshot->generation_ = generation;
  snapshot->source_ = std::move(source);
  return snapshot;
}

std::shared_ptr<const KbSnapshot> KbSnapshot::WrapUnowned(
    const core::NedSystem& system, std::string source, uint64_t generation) {
  // Aliasing constructor: share nothing, point at the caller's system.
  return WrapSystem(
      std::shared_ptr<const core::NedSystem>(
          std::shared_ptr<const void>(), &system),
      std::move(source), generation);
}

SnapshotRegistry::SnapshotRegistry(SnapshotOptions options)
    : options_(std::move(options)) {}

util::StatusOr<std::shared_ptr<const KbSnapshot>> SnapshotRegistry::Publish(
    std::shared_ptr<const KnowledgeBase> kb, std::string source) {
  util::MutexLock lock(&publish_mutex_);
  return PublishLocked(std::move(kb), std::move(source),
                       /*build_seconds_so_far=*/0.0);
}

std::shared_ptr<const KbSnapshot> SnapshotRegistry::PublishSystem(
    std::shared_ptr<const core::NedSystem> system, std::string source) {
  util::MutexLock lock(&publish_mutex_);
  std::shared_ptr<const KbSnapshot> snapshot = KbSnapshot::WrapSystem(
      std::move(system), std::move(source), next_generation_);
  ++next_generation_;
  ++publishes_;
  history_.emplace_back(snapshot->generation(), snapshot);
  CompactHistoryLocked();
  current_.store(snapshot, std::memory_order_release);
  current_generation_.store(snapshot->generation(),
                            std::memory_order_release);
  return snapshot;
}

util::StatusOr<std::shared_ptr<const KbSnapshot>>
SnapshotRegistry::ReloadFromFile(const std::string& path) {
  util::MutexLock lock(&publish_mutex_);
  util::Stopwatch watch;
  util::StatusOr<std::unique_ptr<KnowledgeBase>> loaded =
      LoadKnowledgeBase(path);
  if (!loaded.ok()) {
    ++reload_failures_;
    return loaded.status();
  }
  return PublishLocked(std::shared_ptr<const KnowledgeBase>(
                           std::move(loaded).value()),
                       "file:" + path, watch.ElapsedSeconds());
}

util::StatusOr<std::shared_ptr<const KbSnapshot>>
SnapshotRegistry::ReloadFromBuilder(
    const std::function<util::StatusOr<std::unique_ptr<KnowledgeBase>>()>&
        builder,
    std::string source) {
  util::MutexLock lock(&publish_mutex_);
  util::Stopwatch watch;
  util::StatusOr<std::unique_ptr<KnowledgeBase>> built = builder();
  if (!built.ok()) {
    ++reload_failures_;
    return built.status();
  }
  return PublishLocked(std::shared_ptr<const KnowledgeBase>(
                           std::move(built).value()),
                       std::move(source), watch.ElapsedSeconds());
}

util::StatusOr<std::shared_ptr<const KbSnapshot>>
SnapshotRegistry::PublishLocked(std::shared_ptr<const KnowledgeBase> kb,
                                std::string source,
                                double build_seconds_so_far) {
  AIDA_ASSERT_HELD(publish_mutex_);
  util::Stopwatch watch;
  util::StatusOr<std::shared_ptr<const KbSnapshot>> created =
      KbSnapshot::Create(std::move(kb), next_generation_, std::move(source),
                         options_);
  if (!created.ok()) {
    // Rollback is implicit: current_ was never touched, so the previous
    // generation keeps serving.
    ++reload_failures_;
    return created.status();
  }
  std::shared_ptr<const KbSnapshot> snapshot = std::move(created).value();
  ++next_generation_;
  ++publishes_;
  last_reload_seconds_ = build_seconds_so_far + watch.ElapsedSeconds();
  total_reload_seconds_ += last_reload_seconds_;
  history_.emplace_back(snapshot->generation(), snapshot);
  CompactHistoryLocked();
  // The swap readers race against: one release store. Requests already
  // holding the old snapshot keep it alive until they finish. The
  // generation counter is published second: a worker that sees the new
  // counter value is guaranteed to find (at least) this snapshot behind
  // Current().
  current_.store(snapshot, std::memory_order_release);
  current_generation_.store(snapshot->generation(),
                            std::memory_order_release);
  return snapshot;
}

void SnapshotRegistry::CompactHistoryLocked() {
  std::erase_if(history_, [](const auto& entry) {
    return entry.second.expired();
  });
}

SnapshotRegistryStats SnapshotRegistry::Stats() const {
  SnapshotRegistryStats stats;
  std::shared_ptr<const KbSnapshot> current = Current();
  if (current != nullptr) {
    stats.active_generation = current->generation();
    stats.active_source = current->source();
  }
  util::MutexLock lock(&publish_mutex_);
  stats.publishes = publishes_;
  stats.reloads = publishes_ > 0 ? publishes_ - 1 : 0;
  stats.reload_failures = reload_failures_;
  stats.last_reload_seconds = last_reload_seconds_;
  stats.total_reload_seconds = total_reload_seconds_;
  for (const auto& [generation, weak] : history_) {
    if (generation == stats.active_generation) continue;
    if (!weak.expired()) stats.retiring_generations.push_back(generation);
  }
  return stats;
}

}  // namespace aida::kb
