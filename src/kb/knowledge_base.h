#ifndef AIDA_KB_KNOWLEDGE_BASE_H_
#define AIDA_KB_KNOWLEDGE_BASE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "kb/dictionary.h"
#include "kb/entity.h"
#include "kb/keyphrase_store.h"
#include "kb/link_graph.h"
#include "kb/type_taxonomy.h"
#include "util/status.h"

namespace aida::kb {

/// Immutable facade bundling all knowledge-base components (Figure 2.1 of
/// the paper): the entity repository E, the name dictionary D, entity
/// features F (keyphrases with weights), the link graph, and the type
/// taxonomy. Construct via `KbBuilder`.
class KnowledgeBase {
 public:
  const EntityRepository& entities() const { return *entities_; }
  const Dictionary& dictionary() const { return *dictionary_; }
  const KeyphraseStore& keyphrases() const { return *keyphrases_; }
  const LinkGraph& links() const { return *links_; }
  const TypeTaxonomy& taxonomy() const { return *taxonomy_; }

  /// Number of entities (the collection size N in all weight formulas).
  size_t entity_count() const { return entities_->size(); }

 private:
  friend class KbBuilder;
  KnowledgeBase() = default;

  std::unique_ptr<EntityRepository> entities_;
  std::unique_ptr<Dictionary> dictionary_;
  std::unique_ptr<KeyphraseStore> keyphrases_;
  std::unique_ptr<LinkGraph> links_;
  std::unique_ptr<TypeTaxonomy> taxonomy_;
};

}  // namespace aida::kb

#endif  // AIDA_KB_KNOWLEDGE_BASE_H_
