#ifndef AIDA_KB_KNOWLEDGE_BASE_H_
#define AIDA_KB_KNOWLEDGE_BASE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "kb/dictionary.h"
#include "kb/entity.h"
#include "kb/keyphrase_store.h"
#include "kb/link_graph.h"
#include "kb/type_taxonomy.h"
#include "util/lifetime.h"
#include "util/status.h"

namespace aida::kb {

/// Immutable facade bundling all knowledge-base components (Figure 2.1 of
/// the paper): the entity repository E, the name dictionary D, entity
/// features F (keyphrases with weights), the link graph, and the type
/// taxonomy. Construct via `KbBuilder`, or adopt a zero-copy flat snapshot
/// via `LoadFlatSnapshot` (kb/flat).
class AIDA_OWNER_TYPE KnowledgeBase {
 public:
  const EntityRepository& entities() const AIDA_LIFETIME_BOUND {
    return *entities_;
  }
  const Dictionary& dictionary() const AIDA_LIFETIME_BOUND {
    return *dictionary_;
  }
  const KeyphraseStore& keyphrases() const AIDA_LIFETIME_BOUND {
    return *keyphrases_;
  }
  const LinkGraph& links() const AIDA_LIFETIME_BOUND { return *links_; }
  const TypeTaxonomy& taxonomy() const AIDA_LIFETIME_BOUND {
    return *taxonomy_;
  }

  /// Number of entities (the collection size N in all weight formulas).
  size_t entity_count() const { return entities_->size(); }

  /// True when the bulk stores (dictionary, keyphrases, links) read
  /// directly out of a pinned flat snapshot instead of heap arrays.
  bool flat_backed() const { return backing_ != nullptr; }

  /// Internal (kb/flat): pre-built components plus the storage that their
  /// raw-pointer views target. `backing` (typically a MappedFile) is pinned
  /// for the lifetime of the knowledge base; RCU snapshot retirement drops
  /// the last reference and unmaps the file.
  struct Parts {
    std::unique_ptr<EntityRepository> entities;
    std::unique_ptr<Dictionary> dictionary;
    std::unique_ptr<KeyphraseStore> keyphrases;
    std::unique_ptr<LinkGraph> links;
    std::unique_ptr<TypeTaxonomy> taxonomy;
    std::shared_ptr<const void> backing;
  };

  /// Internal (kb/flat): assembles a knowledge base from already-validated
  /// components.
  static std::unique_ptr<KnowledgeBase> FromParts(Parts parts);

 private:
  friend class KbBuilder;
  KnowledgeBase() = default;

  std::unique_ptr<EntityRepository> entities_;
  std::unique_ptr<Dictionary> dictionary_;
  std::unique_ptr<KeyphraseStore> keyphrases_;
  std::unique_ptr<LinkGraph> links_;
  std::unique_ptr<TypeTaxonomy> taxonomy_;
  // Keeps the mmap'd snapshot alive while any component view points into it.
  std::shared_ptr<const void> backing_;
};

}  // namespace aida::kb

#endif  // AIDA_KB_KNOWLEDGE_BASE_H_
