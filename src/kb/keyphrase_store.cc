#include "kb/keyphrase_store.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace aida::kb {

namespace {

// Superdocuments of very popular entities can contain tens of thousands of
// in-linking entities; weight estimation only needs a stable sample. The
// in-link lists are sorted, so taking a prefix is deterministic.
constexpr size_t kMaxSuperdocMembers = 128;

// Entropy of a Bernoulli(p) event, in bits.
double BernoulliEntropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

// -x*log2(x) with the 0*log0 = 0 convention.
double PLogP(double x) { return x <= 0.0 ? 0.0 : -x * std::log2(x); }

}  // namespace

WordId KeyphraseStore::InternWord(std::string_view word) {
  auto [it, inserted] =
      word_ids_.emplace(std::string(word), static_cast<WordId>(words_.size()));
  if (inserted) words_.emplace_back(word);
  return it->second;
}

PhraseId KeyphraseStore::InternPhrase(const std::vector<WordId>& words) {
  // Parsers must reject empty phrases before interning; see check.h for
  // the untrusted-input-never-reaches-a-check policy.
  AIDA_CHECK(!words.empty(), "keyphrase must contain at least one word");
  std::string key;
  key.reserve(words.size() * 4);
  for (WordId w : words) {
    key.append(reinterpret_cast<const char*>(&w), sizeof(w));
  }
  auto [it, inserted] =
      phrase_keys_.emplace(std::move(key), static_cast<PhraseId>(phrases_.size()));
  if (inserted) phrases_.push_back(words);
  return it->second;
}

PhraseId KeyphraseStore::InternPhraseText(std::string_view text) {
  std::vector<WordId> words;
  for (const std::string& token : util::Split(text, ' ')) {
    words.push_back(InternWord(token));
  }
  return InternPhrase(words);
}

void KeyphraseStore::AddEntityPhrase(EntityId entity, PhraseId phrase,
                                     uint32_t count) {
  AIDA_DCHECK(!finalized_);
  AIDA_DCHECK(phrase < phrases_.size());
  EntityData& data = DataFor(entity);
  size_t idx = IndexOf(data.phrases, phrase);
  if (idx == static_cast<size_t>(-1)) {
    data.phrases.push_back(phrase);
    data.phrase_counts.push_back(count);
  } else {
    data.phrase_counts[idx] += count;
  }
}

KeyphraseStore::EntityData& KeyphraseStore::DataFor(EntityId entity) {
  if (entity >= entities_.size()) entities_.resize(entity + 1);
  return entities_[entity];
}

const KeyphraseStore::EntityData* KeyphraseStore::DataOrNull(
    EntityId entity) const {
  if (entity >= entities_.size()) return nullptr;
  return &entities_[entity];
}

size_t KeyphraseStore::IndexOf(const std::vector<PhraseId>& v, PhraseId p) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] == p) return i;
  }
  return static_cast<size_t>(-1);
}

void KeyphraseStore::Finalize(const LinkGraph& links, size_t entity_count) {
  AIDA_CHECK(!finalized_, "KeyphraseStore finalized twice");
  AIDA_CHECK(links.finalized(),
             "Finalize requires an already-finalized LinkGraph");
  if (entities_.size() < entity_count) entities_.resize(entity_count);
  collection_size_ = entity_count;
  const double n = static_cast<double>(std::max<size_t>(entity_count, 1));

  // Distinct keyword sets per entity.
  for (EntityData& data : entities_) {
    data.words.clear();
    for (PhraseId p : data.phrases) {
      for (WordId w : phrases_[p]) data.words.push_back(w);
    }
    std::sort(data.words.begin(), data.words.end());
    data.words.erase(std::unique(data.words.begin(), data.words.end()),
                     data.words.end());
  }

  // Document frequencies over entities.
  phrase_df_.assign(phrases_.size(), 0);
  word_df_.assign(words_.size(), 0);
  for (const EntityData& data : entities_) {
    for (PhraseId p : data.phrases) ++phrase_df_[p];
    for (WordId w : data.words) ++word_df_[w];
  }

  // Per-entity weights from superdocument co-occurrence statistics.
  std::vector<uint32_t> word_in_superdoc(words_.size(), 0);
  std::vector<uint32_t> phrase_in_superdoc(phrases_.size(), 0);
  std::vector<WordId> touched_words;
  std::vector<PhraseId> touched_phrases;
  for (EntityId e = 0; e < entities_.size(); ++e) {
    EntityData& data = entities_[e];
    data.phrase_mi.assign(data.phrases.size(), 0.0);
    data.word_npmi.assign(data.words.size(), 0.0);
    if (data.phrases.empty()) continue;

    // Superdocument members: the entity plus (a bounded prefix of) its
    // in-linking entities.
    size_t superdoc_size = 1;
    touched_words.clear();
    touched_phrases.clear();
    auto absorb = [&](EntityId member) {
      const EntityData* md = DataOrNull(member);
      if (md == nullptr) return;
      for (WordId w : md->words) {
        if (word_in_superdoc[w]++ == 0) touched_words.push_back(w);
      }
      for (PhraseId p : md->phrases) {
        if (phrase_in_superdoc[p]++ == 0) touched_phrases.push_back(p);
      }
    };
    absorb(e);
    if (e < links.entity_count()) {
      const auto& in = links.InLinks(e);
      size_t take = std::min(in.size(), kMaxSuperdocMembers);
      for (size_t i = 0; i < take; ++i) absorb(in[i]);
      superdoc_size += take;
    }

    const double p_e = static_cast<double>(superdoc_size) / n;

    // Keyword NPMI (Eq. 3.1): contrast occurrence in the superdocument with
    // the global document frequency.
    for (size_t i = 0; i < data.words.size(); ++i) {
      WordId w = data.words[i];
      // A member entity counts once, so the joint count is the number of
      // superdocument members containing w.
      double p_ew =
          static_cast<double>(std::min<uint32_t>(
              word_in_superdoc[w], static_cast<uint32_t>(superdoc_size))) /
          n;
      double p_w = static_cast<double>(word_df_[w]) / n;
      if (p_ew <= 0.0 || p_w <= 0.0) continue;
      double pmi = std::log(p_ew / (p_e * p_w));
      double npmi = p_ew >= 1.0 ? 1.0 : pmi / -std::log(p_ew);
      data.word_npmi[i] = std::max(0.0, npmi);
    }

    // Keyphrase normalized mutual information mu (Eq. 4.1) over the joint
    // binary distribution of (member-of-superdocument, has-phrase).
    const double h_e = BernoulliEntropy(p_e);
    for (size_t i = 0; i < data.phrases.size(); ++i) {
      PhraseId p = data.phrases[i];
      double n11 = static_cast<double>(std::min<uint32_t>(
          phrase_in_superdoc[p], static_cast<uint32_t>(superdoc_size)));
      double n_e = static_cast<double>(superdoc_size);
      double n_p = static_cast<double>(phrase_df_[p]);
      double p11 = n11 / n;
      double p10 = (n_e - n11) / n;
      double p01 = (n_p - n11) / n;
      double p00 = 1.0 - p11 - p10 - p01;
      double h_t = BernoulliEntropy(n_p / n);
      double h_joint = PLogP(p11) + PLogP(p10) + PLogP(p01) + PLogP(p00);
      double denom = h_e + h_t;
      if (denom <= 0.0) continue;
      double mi = 2.0 * (h_e + h_t - h_joint) / denom;
      data.phrase_mi[i] = std::max(0.0, mi);
    }

    for (WordId w : touched_words) word_in_superdoc[w] = 0;
    for (PhraseId p : touched_phrases) phrase_in_superdoc[p] = 0;
  }
  finalized_ = true;
}

const std::string& KeyphraseStore::WordText(WordId w) const {
  AIDA_DCHECK(w < words_.size());
  return words_[w];
}

const std::vector<WordId>& KeyphraseStore::PhraseWords(PhraseId p) const {
  AIDA_DCHECK(p < phrases_.size());
  return phrases_[p];
}

std::string KeyphraseStore::PhraseText(PhraseId p) const {
  std::string out;
  for (WordId w : PhraseWords(p)) {
    if (!out.empty()) out += ' ';
    out += WordText(w);
  }
  return out;
}

WordId KeyphraseStore::FindWord(std::string_view word) const {
  auto it = word_ids_.find(std::string(word));
  return it == word_ids_.end() ? kNoWord : it->second;
}

const std::vector<PhraseId>& KeyphraseStore::EntityPhrases(
    EntityId entity) const {
  static const std::vector<PhraseId>& empty = *new std::vector<PhraseId>();
  const EntityData* data = DataOrNull(entity);
  return data == nullptr ? empty : data->phrases;
}

const std::vector<WordId>& KeyphraseStore::EntityWords(
    EntityId entity) const {
  static const std::vector<WordId>& empty = *new std::vector<WordId>();
  const EntityData* data = DataOrNull(entity);
  return data == nullptr ? empty : data->words;
}

uint32_t KeyphraseStore::EntityPhraseCount(EntityId entity, PhraseId p) const {
  const EntityData* data = DataOrNull(entity);
  if (data == nullptr) return 0;
  size_t idx = IndexOf(data->phrases, p);
  if (idx == static_cast<size_t>(-1)) return 0;
  return data->phrase_counts[idx];
}

uint32_t KeyphraseStore::PhraseDf(PhraseId p) const {
  AIDA_DCHECK(finalized_);
  AIDA_DCHECK(p < phrase_df_.size());
  return phrase_df_[p];
}

uint32_t KeyphraseStore::WordDf(WordId w) const {
  AIDA_DCHECK(finalized_);
  AIDA_DCHECK(w < word_df_.size());
  return word_df_[w];
}

double KeyphraseStore::WordIdf(WordId w) const {
  AIDA_DCHECK(finalized_);
  if (w >= word_df_.size() || word_df_[w] == 0) return 0.0;
  return std::log2(static_cast<double>(collection_size_) /
                   static_cast<double>(word_df_[w]));
}

double KeyphraseStore::PhraseIdf(PhraseId p) const {
  AIDA_DCHECK(finalized_);
  if (p >= phrase_df_.size() || phrase_df_[p] == 0) return 0.0;
  return std::log2(static_cast<double>(collection_size_) /
                   static_cast<double>(phrase_df_[p]));
}

double KeyphraseStore::KeywordNpmi(EntityId e, WordId w) const {
  AIDA_DCHECK(finalized_);
  const EntityData* data = DataOrNull(e);
  if (data == nullptr) return 0.0;
  auto it = std::lower_bound(data->words.begin(), data->words.end(), w);
  if (it == data->words.end() || *it != w) return 0.0;
  return data->word_npmi[static_cast<size_t>(it - data->words.begin())];
}

double KeyphraseStore::PhraseMi(EntityId e, PhraseId p) const {
  AIDA_DCHECK(finalized_);
  const EntityData* data = DataOrNull(e);
  if (data == nullptr) return 0.0;
  size_t idx = IndexOf(data->phrases, p);
  if (idx == static_cast<size_t>(-1)) return 0.0;
  return data->phrase_mi[idx];
}

}  // namespace aida::kb
