#include "kb/keyphrase_store.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.h"
#include "util/string_util.h"

namespace aida::kb {

namespace {

// Superdocuments of very popular entities can contain tens of thousands of
// in-linking entities; weight estimation only needs a stable sample. The
// in-link lists are sorted, so taking a prefix is deterministic.
constexpr size_t kMaxSuperdocMembers = 128;

// Entropy of a Bernoulli(p) event, in bits.
double BernoulliEntropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

// -x*log2(x) with the 0*log0 = 0 convention.
double PLogP(double x) { return x <= 0.0 ? 0.0 : -x * std::log2(x); }

constexpr size_t kNpos = static_cast<size_t>(-1);

}  // namespace

WordId KeyphraseStore::InternWord(std::string_view word) {
  AIDA_DCHECK(!finalized_);
  auto [it, inserted] =
      word_ids_.emplace(std::string(word), static_cast<WordId>(words_.size()));
  if (inserted) words_.emplace_back(word);
  return it->second;
}

PhraseId KeyphraseStore::InternPhrase(const std::vector<WordId>& words) {
  AIDA_DCHECK(!finalized_);
  // Parsers must reject empty phrases before interning; see check.h for
  // the untrusted-input-never-reaches-a-check policy.
  AIDA_CHECK(!words.empty(), "keyphrase must contain at least one word");
  std::string key;
  key.reserve(words.size() * 4);
  for (WordId w : words) {
    key.append(reinterpret_cast<const char*>(&w), sizeof(w));
  }
  auto [it, inserted] =
      phrase_keys_.emplace(std::move(key), static_cast<PhraseId>(phrases_.size()));
  if (inserted) phrases_.push_back(words);
  return it->second;
}

PhraseId KeyphraseStore::InternPhraseText(std::string_view text) {
  std::vector<WordId> words;
  for (const std::string& token : util::Split(text, ' ')) {
    words.push_back(InternWord(token));
  }
  return InternPhrase(words);
}

void KeyphraseStore::AddEntityPhrase(EntityId entity, PhraseId phrase,
                                     uint32_t count) {
  AIDA_DCHECK(!finalized_);
  AIDA_DCHECK(phrase < phrases_.size());
  EntityData& data = DataFor(entity);
  size_t idx = IndexOf(data.phrases, phrase);
  if (idx == kNpos) {
    data.phrases.push_back(phrase);
    data.phrase_counts.push_back(count);
  } else {
    data.phrase_counts[idx] += count;
  }
}

KeyphraseStore::EntityData& KeyphraseStore::DataFor(EntityId entity) {
  if (entity >= entities_.size()) entities_.resize(entity + 1);
  return entities_[entity];
}

size_t KeyphraseStore::IndexOf(std::span<const PhraseId> v, PhraseId p) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] == p) return i;
  }
  return kNpos;
}

void KeyphraseStore::Finalize(const LinkGraph& links, size_t entity_count) {
  AIDA_CHECK(!finalized_, "KeyphraseStore finalized twice");
  AIDA_CHECK(links.finalized(),
             "Finalize requires an already-finalized LinkGraph");
  if (entities_.size() < entity_count) entities_.resize(entity_count);
  const double n = static_cast<double>(std::max<size_t>(entity_count, 1));

  // Distinct keyword sets per entity.
  for (EntityData& data : entities_) {
    data.words.clear();
    for (PhraseId p : data.phrases) {
      for (WordId w : phrases_[p]) data.words.push_back(w);
    }
    std::sort(data.words.begin(), data.words.end());
    data.words.erase(std::unique(data.words.begin(), data.words.end()),
                     data.words.end());
  }

  // Document frequencies over entities.
  phrase_df_.assign(phrases_.size(), 0);
  word_df_.assign(words_.size(), 0);
  for (const EntityData& data : entities_) {
    for (PhraseId p : data.phrases) ++phrase_df_[p];
    for (WordId w : data.words) ++word_df_[w];
  }

  // Per-entity weights from superdocument co-occurrence statistics.
  std::vector<uint32_t> word_in_superdoc(words_.size(), 0);
  std::vector<uint32_t> phrase_in_superdoc(phrases_.size(), 0);
  std::vector<WordId> touched_words;
  std::vector<PhraseId> touched_phrases;
  for (EntityId e = 0; e < entities_.size(); ++e) {
    EntityData& data = entities_[e];
    data.phrase_mi.assign(data.phrases.size(), 0.0);
    data.word_npmi.assign(data.words.size(), 0.0);
    if (data.phrases.empty()) continue;

    // Superdocument members: the entity plus (a bounded prefix of) its
    // in-linking entities.
    size_t superdoc_size = 1;
    touched_words.clear();
    touched_phrases.clear();
    auto absorb = [&](EntityId member) {
      if (member >= entities_.size()) return;
      const EntityData& md = entities_[member];
      for (WordId w : md.words) {
        if (word_in_superdoc[w]++ == 0) touched_words.push_back(w);
      }
      for (PhraseId p : md.phrases) {
        if (phrase_in_superdoc[p]++ == 0) touched_phrases.push_back(p);
      }
    };
    absorb(e);
    if (e < links.entity_count()) {
      const std::span<const EntityId> in = links.InLinks(e);
      size_t take = std::min(in.size(), kMaxSuperdocMembers);
      for (size_t i = 0; i < take; ++i) absorb(in[i]);
      superdoc_size += take;
    }

    const double p_e = static_cast<double>(superdoc_size) / n;

    // Keyword NPMI (Eq. 3.1): contrast occurrence in the superdocument with
    // the global document frequency.
    for (size_t i = 0; i < data.words.size(); ++i) {
      WordId w = data.words[i];
      // A member entity counts once, so the joint count is the number of
      // superdocument members containing w.
      double p_ew =
          static_cast<double>(std::min<uint32_t>(
              word_in_superdoc[w], static_cast<uint32_t>(superdoc_size))) /
          n;
      double p_w = static_cast<double>(word_df_[w]) / n;
      if (p_ew <= 0.0 || p_w <= 0.0) continue;
      double pmi = std::log(p_ew / (p_e * p_w));
      double npmi = p_ew >= 1.0 ? 1.0 : pmi / -std::log(p_ew);
      data.word_npmi[i] = std::max(0.0, npmi);
    }

    // Keyphrase normalized mutual information mu (Eq. 4.1) over the joint
    // binary distribution of (member-of-superdocument, has-phrase).
    const double h_e = BernoulliEntropy(p_e);
    for (size_t i = 0; i < data.phrases.size(); ++i) {
      PhraseId p = data.phrases[i];
      double n11 = static_cast<double>(std::min<uint32_t>(
          phrase_in_superdoc[p], static_cast<uint32_t>(superdoc_size)));
      double n_e = static_cast<double>(superdoc_size);
      double n_p = static_cast<double>(phrase_df_[p]);
      double p11 = n11 / n;
      double p10 = (n_e - n11) / n;
      double p01 = (n_p - n11) / n;
      double p00 = 1.0 - p11 - p10 - p01;
      double h_t = BernoulliEntropy(n_p / n);
      double h_joint = PLogP(p11) + PLogP(p10) + PLogP(p01) + PLogP(p00);
      double denom = h_e + h_t;
      if (denom <= 0.0) continue;
      double mi = 2.0 * (h_e + h_t - h_joint) / denom;
      data.phrase_mi[i] = std::max(0.0, mi);
    }

    for (WordId w : touched_words) word_in_superdoc[w] = 0;
    for (PhraseId p : touched_phrases) phrase_in_superdoc[p] = 0;
  }

  view_.collection_size = entity_count;
  FlattenIntoOwned();
  finalized_ = true;
}

void KeyphraseStore::FlattenIntoOwned() {
  // Word vocabulary -> offset-indexed pool + open-addressing lookup table.
  owned_word_offsets_.reserve(words_.size() + 1);
  owned_word_offsets_.push_back(0);
  for (const std::string& w : words_) {
    owned_word_pool_.append(w);
    owned_word_offsets_.push_back(owned_word_pool_.size());
  }
  owned_word_slots_ = flat::BuildHashSlots(
      words_.size(), [&](uint64_t i) { return std::string_view(words_[i]); });

  // Phrase -> word-id sequences, CSR.
  owned_phrase_word_offsets_.reserve(phrases_.size() + 1);
  owned_phrase_word_offsets_.push_back(0);
  size_t phrase_words_total = 0;
  for (const auto& words : phrases_) {
    phrase_words_total += words.size();
    owned_phrase_word_offsets_.push_back(phrase_words_total);
  }
  owned_phrase_words_.reserve(phrase_words_total);
  for (const auto& words : phrases_) {
    owned_phrase_words_.insert(owned_phrase_words_.end(), words.begin(),
                               words.end());
  }

  // Entity associations, struct-of-arrays.
  owned_entity_phrase_offsets_.reserve(entities_.size() + 1);
  owned_entity_phrase_offsets_.push_back(0);
  owned_entity_word_offsets_.reserve(entities_.size() + 1);
  owned_entity_word_offsets_.push_back(0);
  size_t phrase_total = 0;
  size_t word_total = 0;
  for (const EntityData& data : entities_) {
    phrase_total += data.phrases.size();
    word_total += data.words.size();
    owned_entity_phrase_offsets_.push_back(phrase_total);
    owned_entity_word_offsets_.push_back(word_total);
  }
  owned_entity_phrase_ids_.reserve(phrase_total);
  owned_entity_phrase_counts_.reserve(phrase_total);
  owned_entity_phrase_mi_.reserve(phrase_total);
  owned_entity_word_ids_.reserve(word_total);
  owned_entity_word_npmi_.reserve(word_total);
  for (const EntityData& data : entities_) {
    owned_entity_phrase_ids_.insert(owned_entity_phrase_ids_.end(),
                                    data.phrases.begin(), data.phrases.end());
    owned_entity_phrase_counts_.insert(owned_entity_phrase_counts_.end(),
                                       data.phrase_counts.begin(),
                                       data.phrase_counts.end());
    owned_entity_phrase_mi_.insert(owned_entity_phrase_mi_.end(),
                                   data.phrase_mi.begin(),
                                   data.phrase_mi.end());
    owned_entity_word_ids_.insert(owned_entity_word_ids_.end(),
                                  data.words.begin(), data.words.end());
    owned_entity_word_npmi_.insert(owned_entity_word_npmi_.end(),
                                   data.word_npmi.begin(),
                                   data.word_npmi.end());
  }

  view_.word_offsets = owned_word_offsets_.data();
  view_.word_pool = owned_word_pool_.data();
  view_.word_hash = {owned_word_slots_.data(), owned_word_slots_.size()};
  view_.phrase_word_offsets = owned_phrase_word_offsets_.data();
  view_.phrase_words = owned_phrase_words_.data();
  view_.entity_phrase_offsets = owned_entity_phrase_offsets_.data();
  view_.entity_phrase_ids = owned_entity_phrase_ids_.data();
  view_.entity_phrase_counts = owned_entity_phrase_counts_.data();
  view_.entity_phrase_mi = owned_entity_phrase_mi_.data();
  view_.entity_word_offsets = owned_entity_word_offsets_.data();
  view_.entity_word_ids = owned_entity_word_ids_.data();
  view_.entity_word_npmi = owned_entity_word_npmi_.data();
  view_.phrase_df = phrase_df_.data();
  view_.word_df = word_df_.data();
  view_.word_count = words_.size();
  view_.phrase_count = phrases_.size();
  view_.entity_count = entities_.size();

  // Drop the build-phase containers; every query now reads the views.
  std::vector<std::string>().swap(words_);
  std::unordered_map<std::string, WordId>().swap(word_ids_);
  std::vector<std::vector<WordId>>().swap(phrases_);
  std::unordered_map<std::string, PhraseId>().swap(phrase_keys_);
  std::vector<EntityData>().swap(entities_);
}

std::unique_ptr<KeyphraseStore> KeyphraseStore::FromFlat(
    const FlatView& view) {
  auto store = std::unique_ptr<KeyphraseStore>(new KeyphraseStore());
  store->view_ = view;
  store->finalized_ = true;
  return store;
}

const KeyphraseStore::FlatView& KeyphraseStore::flat_view() const {
  AIDA_DCHECK(finalized_);
  return view_;
}

std::string_view KeyphraseStore::WordText(WordId w) const {
  AIDA_DCHECK(w < word_count());
  if (!finalized_) return words_[w];
  return WordInPool(w);
}

std::span<const WordId> KeyphraseStore::PhraseWords(
    PhraseId p) const AIDA_NONBLOCKING {
  AIDA_DCHECK(p < phrase_count());
  if (!finalized_) return phrases_[p];
  const uint64_t begin = view_.phrase_word_offsets[p];
  return {view_.phrase_words + begin,
          static_cast<size_t>(view_.phrase_word_offsets[p + 1] - begin)};
}

std::string KeyphraseStore::PhraseText(PhraseId p) const {
  std::string out;
  for (WordId w : PhraseWords(p)) {
    if (!out.empty()) out += ' ';
    out += WordText(w);
  }
  return out;
}

WordId KeyphraseStore::FindWord(std::string_view word) const {
  if (!finalized_) {
    auto it = word_ids_.find(std::string(word));
    return it == word_ids_.end() ? kNoWord : it->second;
  }
  const uint64_t index =
      view_.word_hash.Find(word, [&](uint64_t i) { return WordInPool(i); });
  return index == flat::kHashNotFound ? kNoWord
                                      : static_cast<WordId>(index);
}

std::span<const PhraseId> KeyphraseStore::EntityPhrases(
    EntityId entity) const AIDA_NONBLOCKING {
  if (!finalized_) {
    if (entity >= entities_.size()) return {};
    return entities_[entity].phrases;
  }
  if (entity >= view_.entity_count) return {};
  const uint64_t begin = view_.entity_phrase_offsets[entity];
  return {view_.entity_phrase_ids + begin,
          static_cast<size_t>(view_.entity_phrase_offsets[entity + 1] -
                              begin)};
}

std::span<const WordId> KeyphraseStore::EntityWords(
    EntityId entity) const AIDA_NONBLOCKING {
  if (!finalized_) {
    if (entity >= entities_.size()) return {};
    return entities_[entity].words;
  }
  if (entity >= view_.entity_count) return {};
  const uint64_t begin = view_.entity_word_offsets[entity];
  return {view_.entity_word_ids + begin,
          static_cast<size_t>(view_.entity_word_offsets[entity + 1] - begin)};
}

uint32_t KeyphraseStore::EntityPhraseCount(EntityId entity, PhraseId p) const {
  if (!finalized_) {
    if (entity >= entities_.size()) return 0;
    const EntityData& data = entities_[entity];
    size_t idx = IndexOf(data.phrases, p);
    return idx == kNpos ? 0 : data.phrase_counts[idx];
  }
  const std::span<const PhraseId> phrases = EntityPhrases(entity);
  size_t idx = IndexOf(phrases, p);
  if (idx == kNpos) return 0;
  return view_.entity_phrase_counts[view_.entity_phrase_offsets[entity] + idx];
}

uint32_t KeyphraseStore::PhraseDf(PhraseId p) const {
  AIDA_DCHECK(finalized_);
  AIDA_DCHECK(p < view_.phrase_count);
  return view_.phrase_df[p];
}

uint32_t KeyphraseStore::WordDf(WordId w) const {
  AIDA_DCHECK(finalized_);
  AIDA_DCHECK(w < view_.word_count);
  return view_.word_df[w];
}

double KeyphraseStore::WordIdf(WordId w) const {
  AIDA_DCHECK(finalized_);
  if (w >= view_.word_count || view_.word_df[w] == 0) return 0.0;
  return std::log2(static_cast<double>(view_.collection_size) /
                   static_cast<double>(view_.word_df[w]));
}

double KeyphraseStore::PhraseIdf(PhraseId p) const {
  AIDA_DCHECK(finalized_);
  if (p >= view_.phrase_count || view_.phrase_df[p] == 0) return 0.0;
  return std::log2(static_cast<double>(view_.collection_size) /
                   static_cast<double>(view_.phrase_df[p]));
}

double KeyphraseStore::KeywordNpmi(EntityId e, WordId w) const {
  AIDA_DCHECK(finalized_);
  const std::span<const WordId> words = EntityWords(e);
  auto it = std::lower_bound(words.begin(), words.end(), w);
  if (it == words.end() || *it != w) return 0.0;
  return view_.entity_word_npmi[view_.entity_word_offsets[e] +
                                static_cast<size_t>(it - words.begin())];
}

double KeyphraseStore::PhraseMi(EntityId e, PhraseId p) const {
  AIDA_DCHECK(finalized_);
  const std::span<const PhraseId> phrases = EntityPhrases(e);
  size_t idx = IndexOf(phrases, p);
  if (idx == kNpos) return 0.0;
  return view_.entity_phrase_mi[view_.entity_phrase_offsets[e] + idx];
}

}  // namespace aida::kb
