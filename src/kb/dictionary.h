#ifndef AIDA_KB_DICTIONARY_H_
#define AIDA_KB_DICTIONARY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kb/entity.h"
#include "kb/flat/flat_hash.h"
#include "util/function_effects.h"
#include "util/lifetime.h"

namespace aida::kb {

/// One candidate produced by a dictionary lookup: the entity, how often the
/// looked-up name was observed as an anchor for it, and the prior
/// P(entity | name) normalized over all candidates sharing the name.
///
/// The layout is fixed (24 bytes, 8-byte alignment, explicit padding) so
/// candidate arrays can be serialized and mmap'd verbatim.
struct NameCandidate {
  EntityId entity = kNoEntity;
  uint32_t reserved = 0;  // explicit padding; always zero
  uint64_t anchor_count = 0;
  double prior = 0.0;
};

static_assert(sizeof(NameCandidate) == 24 && alignof(NameCandidate) == 8,
              "NameCandidate must have a stable mmap-able layout");

/// The name -> entity dictionary D (Section 2.2.1), harvested in the paper
/// from Wikipedia titles, redirects, disambiguation pages and link anchors.
///
/// Matching follows Section 3.3.2: names of up to 3 characters are matched
/// case-sensitively (to keep acronyms like "US" apart from the word "us");
/// longer names are matched after upper-casing both sides, so the mention
/// "APPLE" retrieves candidates registered under "Apple".
///
/// Two lifecycle phases: AddAnchor accumulates observations into hash maps;
/// Finalize() sorts the names, computes the priors once, and lays both
/// match tables out flat (offset-indexed name pool, per-name candidate
/// ranges, open-addressing lookup slots). Lookup then returns a span into
/// the precomputed candidate array — either heap-owned or mmap'd.
class AIDA_OWNER_TYPE Dictionary {
 public:
  Dictionary() = default;

  /// Records one observation (or `count` observations) of `name` referring
  /// to `entity`. Build phase only.
  void AddAnchor(std::string_view name, EntityId entity, uint64_t count = 1);

  /// Sorts names, normalizes priors and flattens both match tables. Must
  /// be called before any query.
  void Finalize();

  /// All candidates for `mention_text`, ordered by descending anchor count
  /// then entity id, with priors normalized over the candidate set. Empty
  /// when the name is unknown. Requires Finalize().
  /// AIDA_NONBLOCKING: the per-request candidate probe — hash + linear
  /// shift over flat (possibly mmap'd) arrays; case folding for names
  /// longer than 3 characters happens in a stack buffer, not a
  /// std::string (mentions longer than the buffer take an audited
  /// heap-fold cold branch).
  std::span<const NameCandidate> Lookup(std::string_view mention_text) const
      AIDA_LIFETIME_BOUND AIDA_NONBLOCKING;

  /// True if any entity is registered under `mention_text`.
  bool Contains(std::string_view mention_text) const AIDA_NONBLOCKING {
    return !Lookup(mention_text).empty();
  }

  /// Number of distinct names.
  size_t NameCount() const;

  /// Average number of candidates per name (dictionary ambiguity).
  double MeanAmbiguity() const;

  /// All registered surface names, sorted (for corpus generation / stats).
  std::vector<std::string> AllNames() const;

  /// One (name, entity, count) anchor observation; the dictionary is
  /// fully reconstructible from these records (serialization support).
  struct AnchorRecord {
    std::string name;
    EntityId entity = kNoEntity;
    uint64_t count = 0;
  };

  /// Exports all anchor observations sorted by (name, entity).
  std::vector<AnchorRecord> ExportAnchors() const;

  bool finalized() const { return finalized_; }

  // ---- Flat backing (internal, kb/flat) ----------------------------------

  /// One flattened match table: `name_count` names sorted ascending in an
  /// offset-indexed pool, per-name candidate ranges into one candidate
  /// array, and open-addressing slots for O(1) name lookup.
  struct AIDA_VIEW_TYPE TableView {
    const uint64_t* name_offsets = nullptr;      // name_count + 1 entries
    const char* name_pool = nullptr;
    const uint64_t* candidate_offsets = nullptr;  // name_count + 1 entries
    const NameCandidate* candidates = nullptr;
    flat::StringHashView hash;
    uint64_t name_count = 0;
  };

  struct AIDA_VIEW_TYPE FlatView {
    TableView exact;   // all names, matched case-sensitively
    TableView folded;  // upper-cased names longer than 3 characters
  };

  /// Adopts already-validated flat tables (typically an mmap'd snapshot)
  /// without copying; the storage must outlive the dictionary.
  static std::unique_ptr<Dictionary> FromFlat(const FlatView& view);

  /// Valid after Finalize(); the snapshot writer serializes these arrays.
  const FlatView& flat_view() const AIDA_LIFETIME_BOUND;

 private:
  using CandidateMap = std::unordered_map<EntityId, uint64_t>;
  using NameMap = std::unordered_map<std::string, CandidateMap>;

  /// Owned storage for one flattened table.
  struct OwnedTable {
    std::vector<uint64_t> name_offsets;
    std::string name_pool;
    std::vector<uint64_t> candidate_offsets;
    std::vector<NameCandidate> candidates;
    std::vector<uint32_t> slots;
  };

  static void FlattenTable(NameMap& build, OwnedTable& owned,
                           TableView& view);

  std::string_view TableName(const TableView& table AIDA_LIFETIME_BOUND,
                             uint64_t index) const AIDA_NONBLOCKING {
    const uint64_t begin = table.name_offsets[index];
    return {table.name_pool + begin,
            static_cast<size_t>(table.name_offsets[index + 1] - begin)};
  }

  std::span<const NameCandidate> TableLookup(
      const TableView& table AIDA_LIFETIME_BOUND,
      std::string_view name) const AIDA_NONBLOCKING;

  // Build-phase stores (cleared by Finalize).
  NameMap build_exact_;
  NameMap build_folded_;

  OwnedTable owned_exact_;
  OwnedTable owned_folded_;

  FlatView view_;
  bool finalized_ = false;
};

}  // namespace aida::kb

#endif  // AIDA_KB_DICTIONARY_H_
