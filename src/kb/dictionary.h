#ifndef AIDA_KB_DICTIONARY_H_
#define AIDA_KB_DICTIONARY_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kb/entity.h"

namespace aida::kb {

/// One candidate produced by a dictionary lookup: the entity and how often
/// the looked-up name was observed as an anchor for it.
struct NameCandidate {
  EntityId entity = kNoEntity;
  uint64_t anchor_count = 0;
  /// Prior probability P(entity | name), filled in by Lookup from the
  /// anchor counts of all candidates sharing the name.
  double prior = 0.0;
};

/// The name -> entity dictionary D (Section 2.2.1), harvested in the paper
/// from Wikipedia titles, redirects, disambiguation pages and link anchors.
///
/// Matching follows Section 3.3.2: names of up to 3 characters are matched
/// case-sensitively (to keep acronyms like "US" apart from the word "us");
/// longer names are matched after upper-casing both sides, so the mention
/// "APPLE" retrieves candidates registered under "Apple".
class Dictionary {
 public:
  /// Records one observation (or `count` observations) of `name` referring
  /// to `entity`.
  void AddAnchor(std::string_view name, EntityId entity, uint64_t count = 1);

  /// Returns all candidates for `mention_text` with priors normalized over
  /// the candidate set. Empty when the name is unknown.
  std::vector<NameCandidate> Lookup(std::string_view mention_text) const;

  /// True if any entity is registered under `mention_text`.
  bool Contains(std::string_view mention_text) const;

  /// Number of distinct names.
  size_t NameCount() const { return exact_.size(); }

  /// Average number of candidates per name (dictionary ambiguity).
  double MeanAmbiguity() const;

  /// All registered surface names (for corpus generation / stats).
  std::vector<std::string> AllNames() const;

  /// One (name, entity, count) anchor observation; the dictionary is
  /// fully reconstructible from these records (serialization support).
  struct AnchorRecord {
    std::string name;
    EntityId entity = kNoEntity;
    uint64_t count = 0;
  };

  /// Exports all anchor observations in a deterministic order.
  std::vector<AnchorRecord> ExportAnchors() const;

 private:
  using CandidateMap = std::unordered_map<EntityId, uint64_t>;

  // Exact surface form -> candidate counts (primary store).
  std::unordered_map<std::string, CandidateMap> exact_;
  // Upper-cased key -> candidate counts, only for names longer than
  // 3 characters.
  std::unordered_map<std::string, CandidateMap> folded_;
};

}  // namespace aida::kb

#endif  // AIDA_KB_DICTIONARY_H_
