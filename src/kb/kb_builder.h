#ifndef AIDA_KB_KB_BUILDER_H_
#define AIDA_KB_KB_BUILDER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kb/knowledge_base.h"
#include "util/status.h"

namespace aida::kb {

/// Mutable construction interface for a `KnowledgeBase`. The synthetic
/// world generator drives this; real deployments would drive it from a
/// Wikipedia/YAGO dump instead. Usage:
///
///   KbBuilder builder;
///   EntityId e = builder.AddEntity("Jimmy_Page");
///   builder.AddName("Page", e, /*anchor_count=*/120);
///   builder.AddKeyphrase(e, "Gibson guitar");
///   builder.AddLink(other, e);
///   std::unique_ptr<KnowledgeBase> kb = builder.Build();
class KbBuilder {
 public:
  KbBuilder();

  /// Registers a new entity with a unique canonical name.
  EntityId AddEntity(std::string canonical_name);

  /// Registers `name` as a surface form of `entity` observed `anchor_count`
  /// times. Also accumulates the entity's total anchor count (popularity).
  void AddName(std::string_view name, EntityId entity,
               uint64_t anchor_count = 1);

  /// Associates a space-separated keyphrase with `entity`.
  PhraseId AddKeyphrase(EntityId entity, std::string_view phrase_text,
                        uint32_t count = 1);

  /// Adds a page link from `source` to `target`.
  void AddLink(EntityId source, EntityId target);

  /// Adds a type under `parent` (kNoType for root types).
  TypeId AddType(std::string name, TypeId parent = kNoType);

  /// Assigns `type` to `entity`.
  void AssignType(EntityId entity, TypeId type);

  /// Pending link-count access for generators that need degree feedback.
  size_t entity_count() const;

  /// Direct access while building (e.g. to intern shared phrases).
  KeyphraseStore& keyphrases();

  /// Finalizes link lists and all keyphrase weights and returns the
  /// immutable knowledge base. The builder is consumed.
  std::unique_ptr<KnowledgeBase> Build() &&;

 private:
  std::unique_ptr<KnowledgeBase> kb_;
  std::vector<std::pair<EntityId, EntityId>> pending_links_;
};

}  // namespace aida::kb

#endif  // AIDA_KB_KB_BUILDER_H_
