#include "util/check.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace aida::util {

namespace {

std::atomic<CheckFailureHandler> g_handler{nullptr};

}  // namespace

CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

namespace internal_check {

void CheckFail(const char* expr, const char* file, int line, const char* fmt,
               ...) {
  // Format into a fixed buffer: the process is about to die (or the
  // handler is about to throw), so no allocation here — a check can fire
  // under OOM or inside an allocator.
  char message[512];
  message[0] = '\0';
  if (fmt != nullptr && fmt[0] != '\0') {
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(message, sizeof(message), fmt, args);
    va_end(args);
  }
  CheckFailureHandler handler = g_handler.load(std::memory_order_acquire);
  if (handler != nullptr) {
    CheckFailureInfo info;
    info.expression = expr;
    info.file = file;
    info.line = line;
    info.message = message;
    handler(info);
    // A handler that returns declined to take over; fall through.
  }
  std::fprintf(stderr, "AIDA_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, message[0] != '\0' ? " — " : "", message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_check
}  // namespace aida::util
