#ifndef AIDA_UTIL_THREAD_ANNOTATIONS_H_
#define AIDA_UTIL_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations.
///
/// These macros attach locking contracts to types, fields, and functions
/// so that a Clang build with `-Wthread-safety` (tools/run_static_analysis.sh
/// turns it into `-Werror`) proves at compile time that every access to a
/// guarded field happens under its mutex and that lock acquisition order
/// never inverts the declared ranks. On compilers without the attribute
/// (GCC, MSVC) every macro expands to nothing, so annotated code builds
/// everywhere and the contracts cost nothing at runtime.
///
/// Conventions (DESIGN.md §6 "Correctness tooling"):
///  * fields guarded by a mutex carry AIDA_GUARDED_BY(mutex_);
///  * private helpers that expect the caller to hold a lock carry
///    AIDA_REQUIRES(mutex_) instead of re-locking;
///  * public entry points that take a lock internally carry
///    AIDA_EXCLUDES(mutex_) so the analysis rejects re-entrant deadlocks;
///  * escapes via AIDA_NO_THREAD_SAFETY_ANALYSIS are a last resort and
///    each use must carry a one-line justification comment.

#if defined(__clang__)
#define AIDA_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define AIDA_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off Clang
#endif

/// Declares a type to be a lockable capability ("mutex" names it in
/// diagnostics).
#define AIDA_CAPABILITY(x) \
  AIDA_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define AIDA_SCOPED_CAPABILITY \
  AIDA_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define AIDA_GUARDED_BY(x) AIDA_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer field: the pointed-to data (not the pointer itself) is guarded
/// by `x`.
#define AIDA_PT_GUARDED_BY(x) \
  AIDA_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Declared lock-order edges, checked statically by Clang (the runtime
/// rank checker in util/mutex.h covers non-Clang builds).
#define AIDA_ACQUIRED_BEFORE(...) \
  AIDA_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define AIDA_ACQUIRED_AFTER(...) \
  AIDA_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Function requires the caller to already hold the capability.
#define AIDA_REQUIRES(...) \
  AIDA_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define AIDA_REQUIRES_SHARED(...) \
  AIDA_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define AIDA_ACQUIRE(...) \
  AIDA_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define AIDA_ACQUIRE_SHARED(...) \
  AIDA_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability the caller holds.
#define AIDA_RELEASE(...) \
  AIDA_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define AIDA_RELEASE_SHARED(...) \
  AIDA_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// Function attempts acquisition; the first argument is the return value
/// that signals success.
#define AIDA_TRY_ACQUIRE(...) \
  AIDA_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Function must be called WITHOUT the listed capabilities held (it will
/// acquire them itself); catches self-deadlock at compile time.
#define AIDA_EXCLUDES(...) \
  AIDA_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held; tells the analysis to
/// assume it from here on.
#define AIDA_ASSERT_CAPABILITY(x) \
  AIDA_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define AIDA_RETURN_CAPABILITY(x) \
  AIDA_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use needs
/// a one-line justification comment naming why the contract cannot be
/// expressed (see DESIGN.md §6).
#define AIDA_NO_THREAD_SAFETY_ANALYSIS \
  AIDA_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // AIDA_UTIL_THREAD_ANNOTATIONS_H_
