#ifndef AIDA_UTIL_LIFETIME_H_
#define AIDA_UTIL_LIFETIME_H_

/// View-lifetime annotations for the span-based KB read API.
///
/// Since the flat-snapshot work (DESIGN.md §5f) every bulk KB read —
/// dictionary candidates, keyphrase arrays, link-graph rows — returns a
/// `std::span` / `std::string_view` that may point directly into an
/// mmap-ed snapshot. The snapshot is retired RCU-style: when the last
/// pinned request drops its `shared_ptr`, the file is unmapped. A view
/// that outlives its pin is therefore a silent use-after-munmap that no
/// test may ever execute. These macros make the contract checkable at
/// compile time, the same way util/thread_annotations.h made the locking
/// contracts checkable (DESIGN.md §6).
///
/// Under Clang they expand to the lifetime attributes consumed by
/// `-Wdangling`, `-Wdangling-gsl` and `-Wreturn-stack-address`
/// (tools/run_static_analysis.sh promotes all three to errors); on other
/// compilers they expand to nothing, so annotated code builds everywhere.
///
/// Conventions (DESIGN.md §6 "View-lifetime contract"):
///  * every function returning a span, string_view, or reference that
///    aliases `*this` (or a parameter) carries AIDA_LIFETIME_BOUND on
///    the aliased object — for member functions that is a trailing
///    annotation binding the implicit `this`;
///  * structs that aggregate raw pointers/views into storage they do not
///    own (the kb/flat `FlatView`s, `BinaryReader`, …) are declared
///    `struct AIDA_VIEW_TYPE Name`; the view-storage lint exempts such
///    types from the "no views in members" rule, because a view-of-views
///    dies with the same pin;
///  * classes that own the bytes their accessors alias (the KB stores,
///    `MappedFile`) are declared `class AIDA_OWNER_TYPE Name`, which
///    lets Clang flag a view initialized from a temporary owner.

#if defined(__clang__)

/// On a function parameter (or trailing, for the implicit object
/// parameter): the return value aliases this argument and must not
/// outlive it.
#define AIDA_LIFETIME_BOUND [[clang::lifetimebound]]

/// On a class/struct declaration: instances are non-owning views;
/// initializing one from a temporary owner is a dangling-view error.
#define AIDA_VIEW_TYPE [[gsl::Pointer]]

/// On a class/struct declaration: instances own storage that views may
/// alias; a view taken from a temporary instance dangles.
#define AIDA_OWNER_TYPE [[gsl::Owner]]

#else  // !__clang__

#define AIDA_LIFETIME_BOUND   // no-op off Clang
#define AIDA_VIEW_TYPE        // no-op off Clang
#define AIDA_OWNER_TYPE       // no-op off Clang

#endif  // __clang__

#endif  // AIDA_UTIL_LIFETIME_H_
