#ifndef AIDA_UTIL_CACHELINE_H_
#define AIDA_UTIL_CACHELINE_H_

#include <atomic>
#include <cstddef>
#include <new>

#include "util/function_effects.h"

namespace aida::util {

/// Alignment that keeps two concurrently written objects off one cache
/// line — the constant behind every "per-worker slot" in the serving
/// stack. Uses std::hardware_destructive_interference_size where the
/// standard library provides it (the compile-time promise the ISSUE's
/// false-sharing fixes are stated against) and falls back to 64, the line
/// size of every x86-64 and mainstream AArch64 part. The CMake build adds
/// -Wno-interference-size: GCC warns that the value can differ across
/// -mtune targets, which is exactly why the fallback pins 64.
#if defined(__cpp_lib_hardware_interference_size)
inline constexpr std::size_t kCacheLineSize =
    std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLineSize = 64;
#endif

/// Atomically adds `delta` to `target` with a CAS loop.
/// std::atomic<double>::fetch_add is C++20-library-only and still missing
/// from several shipping standard libraries; the loop is the portable
/// spelling and compiles to the same contended-line behavior. Relaxed
/// ordering: callers aggregate these values for monitoring, never for
/// synchronization.
inline void AtomicAddDouble(std::atomic<double>& target,
                            double delta) AIDA_NONBLOCKING {
  double observed = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(observed, observed + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// Atomically raises `target` to at least `value`. The CAS failure path
/// reloads `observed`, so a racing larger maximum is never overwritten
/// with a smaller one.
inline void AtomicMaxDouble(std::atomic<double>& target,
                            double value) AIDA_NONBLOCKING {
  double observed = target.load(std::memory_order_relaxed);
  while (value > observed &&
         !target.compare_exchange_weak(observed, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace aida::util

#endif  // AIDA_UTIL_CACHELINE_H_
