#include "util/serialize.h"

#include <fstream>
#include <sstream>

namespace aida::util {

Status WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return ss.str();
}

}  // namespace aida::util
