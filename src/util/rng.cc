#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace aida::util {

namespace {

// SplitMix64, used to expand the seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  AIDA_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  AIDA_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Gaussian() {
  // Box-Muller; the discarded second sample keeps the API stateless.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

int Rng::Geometric(double p, int cap) {
  AIDA_DCHECK(p > 0.0 && p <= 1.0);
  int failures = 0;
  while (failures < cap && !Bernoulli(p)) ++failures;
  return failures;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  AIDA_DCHECK(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  AIDA_DCHECK(total > 0);
  double r = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA02BDBF7BB3C0A7ULL); }

ZipfSampler::ZipfSampler(size_t n, double exponent) {
  AIDA_CHECK(n >= 1);
  cdf_.resize(n);
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = acc;
  }
  for (double& v : cdf_) v /= acc;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double r = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t i) const {
  AIDA_DCHECK(i < cdf_.size());
  if (i == 0) return cdf_[0];
  return cdf_[i] - cdf_[i - 1];
}

}  // namespace aida::util
