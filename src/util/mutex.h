#ifndef AIDA_UTIL_MUTEX_H_
#define AIDA_UTIL_MUTEX_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/thread_annotations.h"

namespace aida::util {

/// Rank of a mutex that opted out of lock-order checking.
inline constexpr int kNoLockRank = -1;

/// One detected lock-order inversion: a thread tried to acquire a mutex
/// whose rank does not exceed the highest-ranked mutex it already holds
/// (ranks must strictly increase in acquisition order; see
/// util/lock_ranks.h for the stack's order).
struct LockRankViolation {
  int held_rank = kNoLockRank;       // highest rank already held
  int acquiring_rank = kNoLockRank;  // rank of the offending acquisition
};

using LockRankViolationHandler = void (*)(const LockRankViolation&);

/// Installs `handler` for subsequent violations and returns the previous
/// handler. The default handler prints both ranks to stderr and aborts;
/// tests install a recording handler to observe violations in-process.
/// Passing nullptr restores the default.
LockRankViolationHandler SetLockRankViolationHandler(
    LockRankViolationHandler handler);

/// Turns the runtime lock-rank checker on or off process-wide. Defaults
/// to on in debug builds (!NDEBUG) and off in release builds, where the
/// only per-acquisition cost is one relaxed atomic load. Toggle before
/// concurrent traffic starts: flipping it while ranked locks are held
/// cannot corrupt anything, but inversions in that window may go
/// unreported.
void EnableLockRankChecking(bool enabled);
bool LockRankCheckingEnabled();

/// A std::mutex wrapper carrying Clang thread-safety capability
/// annotations, an AssertHeld() debug assertion, and an optional
/// lock-rank for the debug-build lock-order checker. This is THE mutex of
/// the codebase: core/, serve/, kb/, and util/ hold no raw std::mutex
/// (tools/run_static_analysis.sh enforces the annotations on every Clang
/// build), so any future guarded-field access outside its lock fails to
/// compile rather than waiting for a TSan interleaving.
class AIDA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// A ranked mutex participates in lock-order checking: acquiring it
  /// while holding any ranked mutex with rank >= `rank` reports an
  /// inversion (util/lock_ranks.h defines the stack's order).
  explicit Mutex(int rank) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() AIDA_ACQUIRE() {
    mutex_.lock();
    MarkAcquired();
  }

  void Unlock() AIDA_RELEASE() {
    MarkReleased();
    mutex_.unlock();
  }

  /// Returns true (with the lock held) on success; never blocks.
  bool TryLock() AIDA_TRY_ACQUIRE(true) {
    if (!mutex_.try_lock()) return false;
    MarkAcquired();
    return true;
  }

  /// Aborts (in debug builds) unless the calling thread holds this mutex;
  /// also tells the static analysis to assume it held from here on. The
  /// runtime check compiles out under NDEBUG, the annotation never does.
  void AssertHeld() const AIDA_ASSERT_CAPABILITY(this);

  int rank() const { return rank_; }

 private:
  friend class CondVar;

  /// Rank bookkeeping + holder stamp after the underlying lock is taken.
  void MarkAcquired();
  /// Inverse of MarkAcquired, called before the underlying unlock.
  void MarkReleased();

  std::mutex mutex_;
  const int rank_ = kNoLockRank;
  /// Thread that currently holds the mutex (default id when free). Only
  /// written by the holder under the lock, so relaxed ordering suffices;
  /// AssertHeld's read either sees its own thread's stamp or some other
  /// value, both of which it classifies correctly.
  std::atomic<std::thread::id> holder_{};
};

/// Debug assertion macro mirroring the capability annotation; reads as a
/// statement of the locking contract at the top of lock-requiring code.
#define AIDA_ASSERT_HELD(mutex) (mutex).AssertHeld()

/// RAII scoped lock over util::Mutex, annotated as a scoped capability so
/// the static analysis tracks the critical section's extent.
class AIDA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mutex) AIDA_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_->Lock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() AIDA_RELEASE() { mutex_->Unlock(); }

 private:
  Mutex* const mutex_;
};

/// Condition variable paired with util::Mutex. Wait releases the caller's
/// mutex (updating the rank/holder bookkeeping) and reacquires it before
/// returning, exactly like std::condition_variable — the annotations make
/// the "must hold the mutex" precondition compile-time checked.
///
/// Prefer explicit `while (!condition) cv.Wait(mutex);` loops over the
/// predicate overload in annotated code: the loop body is analyzed in the
/// caller's locked scope, whereas a predicate lambda is a separate
/// function the analysis sees without the lock held unless the lambda
/// itself is annotated.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex` and blocks until notified (or
  /// spuriously woken); `mutex` is held again on return.
  void Wait(Mutex& mutex) AIDA_REQUIRES(mutex);

  /// Waits until `predicate()` holds. The predicate runs with `mutex`
  /// held; annotate lambdas touching guarded state with AIDA_REQUIRES.
  template <typename Predicate>
  void Wait(Mutex& mutex, Predicate predicate) AIDA_REQUIRES(mutex) {
    while (!predicate()) Wait(mutex);
  }

  /// Waits up to `timeout`; returns false if the timeout elapsed without
  /// a notification. `mutex` is held again on return either way.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mutex, std::chrono::duration<Rep, Period> timeout)
      AIDA_REQUIRES(mutex) {
    return WaitUntil(mutex, std::chrono::steady_clock::now() +
                                std::chrono::duration_cast<
                                    std::chrono::steady_clock::duration>(
                                    timeout));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  /// Returns false when `deadline` passed without a notification.
  bool WaitUntil(Mutex& mutex, std::chrono::steady_clock::time_point deadline)
      AIDA_REQUIRES(mutex);

  std::condition_variable cv_;
};

}  // namespace aida::util

#endif  // AIDA_UTIL_MUTEX_H_
