#include "util/worker_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace aida::util {

WorkerPool::WorkerPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(&mutex_);
    stopping_ = true;
  }
  ready_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mutex_);
    tasks_.push_back(std::move(task));
  }
  ready_.NotifyOne();
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!stopping_ && tasks_.empty()) ready_.Wait(mutex_);
      // Drain-then-stop: queued tasks still run after the stop flag rises,
      // so a ParallelFor racing the destructor cannot lose indices.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void WorkerPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& body) {
  if (count == 0) return;

  // Per-call state, shared by the runner tasks of this invocation only, so
  // concurrent ParallelFor calls on one pool never interfere.
  struct CallState {
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    Mutex mutex{lock_rank::kParallelForState};
    std::exception_ptr error AIDA_GUARDED_BY(mutex);
    CondVar done;
    size_t active AIDA_GUARDED_BY(mutex) = 0;
  };
  auto state = std::make_shared<CallState>();
  const size_t runners = std::min(num_threads(), count);
  {
    // Construction is single-threaded, but the annotated field still
    // wants its lock — runners may start before this scope exits.
    MutexLock lock(&state->mutex);
    state->active = runners;
  }

  // `body` is captured by reference: the caller blocks below until every
  // runner finished, so the reference cannot dangle.
  auto runner = [state, count, &body] {
    for (;;) {
      if (state->failed.load(std::memory_order_relaxed)) break;
      const size_t index = state->next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) break;
      try {
        body(index);
      } catch (...) {
        MutexLock lock(&state->mutex);
        if (!state->error) state->error = std::current_exception();
        state->failed.store(true, std::memory_order_relaxed);
        break;
      }
    }
    MutexLock lock(&state->mutex);
    if (--state->active == 0) state->done.NotifyAll();
  };

  for (size_t r = 0; r < runners; ++r) Submit(runner);
  MutexLock lock(&state->mutex);
  while (state->active != 0) state->done.Wait(state->mutex);
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace aida::util
