#include "util/alloc_probe.h"

#include <cstdlib>
#include <new>

// Sanitizer runtimes interpose malloc/operator new themselves; replacing
// the global operators underneath them breaks their bookkeeping
// (alloc-dealloc-mismatch, container annotations). Compile the probe out
// there and report unavailable. AIDA_DISABLE_ALLOC_PROBE is the manual
// override for exotic link environments.
#if defined(AIDA_DISABLE_ALLOC_PROBE) || defined(__SANITIZE_ADDRESS__) || \
    defined(__SANITIZE_THREAD__) || defined(__SANITIZE_MEMORY__)
#define AIDA_ALLOC_PROBE_COMPILED_OUT 1
#endif
#if !defined(AIDA_ALLOC_PROBE_COMPILED_OUT) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define AIDA_ALLOC_PROBE_COMPILED_OUT 1
#endif
#endif

namespace aida::util {
namespace {

// Trivially-constructed POD → constant-initialized TLS, no init guard on
// the operator-new fast path (which may run before main, during static
// construction).
thread_local AllocProbeCounters tls_counts;

}  // namespace

bool AllocProbeAvailable() {
#ifdef AIDA_ALLOC_PROBE_COMPILED_OUT
  return false;
#else
  return true;
#endif
}

AllocProbeCounters ThisThreadAllocCounts() { return tls_counts; }

}  // namespace aida::util

#ifndef AIDA_ALLOC_PROBE_COMPILED_OUT

namespace {

void* ProbeAllocate(std::size_t size) noexcept {
  // malloc(0) may return nullptr legally; operator new must return a
  // unique pointer even for zero bytes.
  void* ptr = std::malloc(size != 0 ? size : 1);
  if (ptr != nullptr) {
    aida::util::tls_counts.allocations += 1;
    aida::util::tls_counts.bytes_allocated += size;
  }
  return ptr;
}

void* ProbeAllocateAligned(std::size_t size, std::size_t alignment) noexcept {
  // aligned_alloc requires size to be a multiple of alignment.
  std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  void* ptr = std::aligned_alloc(alignment, rounded != 0 ? rounded : alignment);
  if (ptr != nullptr) {
    aida::util::tls_counts.allocations += 1;
    aida::util::tls_counts.bytes_allocated += size;
  }
  return ptr;
}

void ProbeFree(void* ptr) noexcept {
  if (ptr != nullptr) {
    aida::util::tls_counts.deallocations += 1;
    std::free(ptr);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Replacements for the replaceable global allocation functions
// ([new.delete]): throwing, nothrow and aligned forms, plus the sized
// deletes. All funnel into the three helpers above so the counting
// contract in alloc_probe.h holds uniformly.
// ---------------------------------------------------------------------------

void* operator new(std::size_t size) {
  void* ptr = ProbeAllocate(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = ProbeAllocate(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return ProbeAllocate(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ProbeAllocate(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* ptr = ProbeAllocateAligned(size, static_cast<std::size_t>(alignment));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  void* ptr = ProbeAllocateAligned(size, static_cast<std::size_t>(alignment));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return ProbeAllocateAligned(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return ProbeAllocateAligned(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* ptr) noexcept { ProbeFree(ptr); }
void operator delete[](void* ptr) noexcept { ProbeFree(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { ProbeFree(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { ProbeFree(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  ProbeFree(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  ProbeFree(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept { ProbeFree(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { ProbeFree(ptr); }
void operator delete(void* ptr, std::align_val_t, std::size_t) noexcept {
  ProbeFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t, std::size_t) noexcept {
  ProbeFree(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  ProbeFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  ProbeFree(ptr);
}

#endif  // !AIDA_ALLOC_PROBE_COMPILED_OUT
