#ifndef AIDA_UTIL_SERIALIZE_H_
#define AIDA_UTIL_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/lifetime.h"
#include "util/status.h"

namespace aida::util {

/// Append-only binary encoder for fixed-width integers, doubles, strings,
/// and vectors thereof. Produces a byte buffer `BinaryReader` can decode.
/// Little-endian, no alignment padding.
class BinaryWriter {
 public:
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(T));
  }

  void WriteStringVector(const std::vector<std::string>& v) {
    WriteU64(v.size());
    for (const auto& s : v) WriteString(s);
  }

  const std::string& buffer() const AIDA_LIFETIME_BOUND { return buffer_; }
  std::string&& TakeBuffer() { return std::move(buffer_); }

 private:
  void WriteRaw(const void* data, size_t n) {
    buffer_.append(static_cast<const char*>(data), n);
  }

  std::string buffer_;
};

/// Sequential decoder over a byte buffer produced by `BinaryWriter`.
/// All reads return an error Status on truncated input instead of
/// reading out of bounds. A view type: it aliases `data` without owning
/// it, so the buffer must outlive the reader.
class AIDA_VIEW_TYPE BinaryReader {
 public:
  explicit BinaryReader(std::string_view data AIDA_LIFETIME_BOUND)
      : data_(data) {}

  Status ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadI64(int64_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadDouble(double* v) { return ReadRaw(v, sizeof(*v)); }

  Status ReadString(std::string* s) {
    uint64_t n = 0;
    Status st = ReadU64(&n);
    if (!st.ok()) return st;
    if (n > Remaining()) return Truncated();
    s->assign(data_.substr(pos_, n));
    pos_ += n;
    return Status::Ok();
  }

  template <typename T>
  Status ReadVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    Status st = ReadU64(&n);
    if (!st.ok()) return st;
    // Divide instead of multiplying: n comes from untrusted input, and
    // n * sizeof(T) can wrap uint64 past the bound check (then resize(n)
    // would attempt a huge allocation).
    if (n > Remaining() / sizeof(T)) return Truncated();
    v->resize(n);
    return ReadRaw(v->data(), n * sizeof(T));
  }

  Status ReadStringVector(std::vector<std::string>* v) {
    uint64_t n = 0;
    Status st = ReadU64(&n);
    if (!st.ok()) return st;
    // Each element needs at least its 8-byte length prefix, so a count
    // beyond Remaining()/8 is corrupt; checking before reserve() keeps a
    // forged header from forcing a multi-gigabyte allocation.
    if (n > Remaining() / sizeof(uint64_t)) return Truncated();
    v->clear();
    v->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      std::string s;
      st = ReadString(&s);
      if (!st.ok()) return st;
      v->push_back(std::move(s));
    }
    return Status::Ok();
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t Remaining() const { return data_.size() - pos_; }

 private:
  Status ReadRaw(void* out, size_t n) {
    if (n > Remaining()) return Truncated();
    // memcpy declares its pointers nonnull even for n == 0, and an empty
    // vector's data() may be null — skip the call instead of passing it.
    if (n == 0) return Status::Ok();
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return Status::Ok();
  }

  static Status Truncated() {
    return Status::IoError("truncated serialized data");
  }

  std::string_view data_;
  size_t pos_ = 0;
};

/// Writes `data` to `path`, replacing any existing file.
Status WriteFile(const std::string& path, const std::string& data);

/// Reads the full contents of `path`.
StatusOr<std::string> ReadFile(const std::string& path);

}  // namespace aida::util

#endif  // AIDA_UTIL_SERIALIZE_H_
