#ifndef AIDA_UTIL_STRING_UTIL_H_
#define AIDA_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/lifetime.h"

namespace aida::util {

/// ASCII-lowercases `s` (the library's synthetic text is ASCII-only).
std::string ToLower(std::string_view s);

/// ASCII-uppercases `s`.
std::string ToUpper(std::string_view s);

/// True if every alphabetic character in `s` is upper case and `s`
/// contains at least one alphabetic character.
bool IsAllUpper(std::string_view s);

/// Splits `s` on `sep`, omitting empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace. The result aliases
/// `s`'s storage.
std::string_view Trim(std::string_view s AIDA_LIFETIME_BOUND);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace aida::util

#endif  // AIDA_UTIL_STRING_UTIL_H_
