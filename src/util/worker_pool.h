#ifndef AIDA_UTIL_WORKER_POOL_H_
#define AIDA_UTIL_WORKER_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace aida::util {

/// A persistent pool of worker threads fed from an unbounded FIFO task
/// queue. Threads are created once at construction and reused for every
/// task, replacing the create/join-per-call pattern that used to live in
/// core::BatchDisambiguator and that an online service cannot afford.
///
/// Two usage modes:
///  * Submit() enqueues a fire-and-forget task (the serving layer submits
///    one long-running dequeue loop per worker);
///  * ParallelFor() runs an indexed body across the pool with dynamic
///    dispatch and blocks the caller until every index finished.
///
/// The destructor stops intake, drains tasks already queued, and joins.
class WorkerPool {
 public:
  /// `num_threads` of 0 selects the hardware concurrency.
  explicit WorkerPool(size_t num_threads = 0);

  /// Drains queued tasks, then joins all workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `task` for execution on some worker. Never blocks; the queue
  /// is unbounded (bounded admission belongs to the layer above, see
  /// serve::BoundedQueue). Tasks must not throw — a task that needs
  /// exception transport wraps its own try/catch, as ParallelFor does.
  void Submit(std::function<void()> task) AIDA_EXCLUDES(mutex_);

  /// Runs body(0) .. body(count - 1) across up to min(num_threads, count)
  /// workers with dynamic dispatch (an atomic index, so skewed per-index
  /// costs balance), blocking until all dispatched indices completed. If a
  /// body throws, dispatch of further indices stops, in-flight bodies
  /// finish, and the first captured exception is rethrown here. Safe to
  /// call concurrently from several threads sharing one pool.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body)
      AIDA_EXCLUDES(mutex_);

 private:
  void WorkerLoop() AIDA_EXCLUDES(mutex_);

  Mutex mutex_{lock_rank::kWorkerPool};
  CondVar ready_;
  std::deque<std::function<void()>> tasks_ AIDA_GUARDED_BY(mutex_);
  bool stopping_ AIDA_GUARDED_BY(mutex_) = false;
  /// Written only at construction, joined at destruction; never guarded.
  std::vector<std::thread> threads_;
};

}  // namespace aida::util

#endif  // AIDA_UTIL_WORKER_POOL_H_
