#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace aida::util {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool IsAllUpper(std::string_view s) {
  bool saw_alpha = false;
  for (char c : s) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalpha(uc)) {
      saw_alpha = true;
      if (!std::isupper(uc)) return false;
    }
  }
  return saw_alpha;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string_view::npos) end = s.size();
    if (end > start) pieces.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace aida::util
