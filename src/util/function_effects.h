#ifndef AIDA_UTIL_FUNCTION_EFFECTS_H_
#define AIDA_UTIL_FUNCTION_EFFECTS_H_

/// Function-effect annotations for the steady-state request path.
///
/// The serving layer's tail-latency budget rests on two invariants that
/// nothing enforced until now: once a worker is warm, processing a
/// request must stay (a) off blocking syscalls and unbounded waits and
/// (b) off the allocator. Both rot silently — a convenience std::string
/// here, a std::map there — and only show up later as p99 regressions.
/// These macros encode the discipline as compiler-checked contracts, the
/// same playbook as util/thread_annotations.h (locking) and
/// util/lifetime.h (view lifetimes): Clang >= 20 verifies them via the
/// function-effect analysis ([[clang::nonblocking]] /
/// [[clang::nonallocating]], -Wfunction-effects); other compilers see
/// no-ops. tools/run_static_analysis.sh promotes the diagnostics to
/// errors in its dedicated build (-DAIDA_FUNCTION_EFFECT_ANALYSIS=ON),
/// and src/util/alloc_probe.h is the compiler-independent runtime
/// backstop that measures what the annotations promise.
///
/// Vocabulary (DESIGN.md §6 "Function-effect discipline"):
///  * AIDA_NONBLOCKING — the strong contract: no unbounded waits, no
///    blocking syscalls, no allocation, no throw (nonblocking implies
///    nonallocating in Clang's lattice). Used on the lock-free leaves:
///    histogram Record, metrics slot updates, Chase-Lev deque ops, flat
///    KB reads, scoring kernels.
///  * AIDA_NONALLOCATING — the weaker contract for paths that may spin
///    on a bounded critical section but must not touch the allocator.
///  * AIDA_EFFECT_ESCAPE_BEGIN("reason") / AIDA_EFFECT_ESCAPE_END — the
///    audited opt-out, bracketing a statement range inside an annotated
///    function whose effects are deliberate and bounded: a cold branch
///    (cache-miss relatedness computation, deque spill to the injection
///    queue), or a mutex whose critical section is O(1) and never parks
///    (a shard probe, a per-worker metrics map). Every escape must carry
///    a reason string; the region stays visible to reviewers and greppable
///    (`grep -rn AIDA_EFFECT_ESCAPE src/`), unlike a bare pragma. The
///    policy mirrors AIDA_NO_THREAD_SAFETY_ANALYSIS: zero escapes is the
///    goal, each one is a documented audit, never a reflex.
///  * AIDA_BLOCKING / AIDA_ALLOCATING — explicit negative markers for
///    functions whose blocking/allocating nature is the point (queue Pop,
///    snapshot acquisition), so a hot-path caller cannot absorb them by
///    inference and reviewers see the contract at the declaration.
///
/// Placement: the effect attributes attach to the function TYPE, so the
/// macros go after the parameter list (and after noexcept/const), like a
/// trailing thread-safety annotation:
///
///   void Record(double seconds) AIDA_NONBLOCKING;
///   T* TryPop() AIDA_NONBLOCKING;
///   std::optional<T> Pop() AIDA_BLOCKING;   // parks until work arrives
///
/// Virtual interface note: the public RelatednessMeasure / NedSystem
/// virtuals stay unannotated — user subclasses may legitimately block —
/// so the discipline is applied to the concrete kernels and the
/// infrastructure underneath, and cold calls through the virtuals sit
/// behind audited escapes.

// The attributes and the -Wfunction-effects verification shipped in
// Clang 20; __has_cpp_attribute keeps the gate exact (a newer compiler
// advertising the attribute enables the contract automatically).
#if defined(__clang__) && defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::nonblocking)
#define AIDA_FUNCTION_EFFECTS_AVAILABLE 1
#endif
#endif

#ifdef AIDA_FUNCTION_EFFECTS_AVAILABLE

#define AIDA_NONBLOCKING [[clang::nonblocking]]
#define AIDA_NONALLOCATING [[clang::nonallocating]]
#define AIDA_BLOCKING [[clang::blocking]]
#define AIDA_ALLOCATING [[clang::allocating]]

/// Audited opt-out: suppresses -Wfunction-effects for the bracketed
/// statements. `reason` is not emitted into the binary — it exists so
/// the justification lives AT the escape and code review can hold the
/// line ("every escape explains itself").
#define AIDA_EFFECT_ESCAPE_BEGIN(reason)                        \
  _Pragma("clang diagnostic push")                              \
      _Pragma("clang diagnostic ignored \"-Wunknown-warning-option\"") \
          _Pragma("clang diagnostic ignored \"-Wfunction-effects\"")
#define AIDA_EFFECT_ESCAPE_END _Pragma("clang diagnostic pop")

#else  // !AIDA_FUNCTION_EFFECTS_AVAILABLE

#define AIDA_NONBLOCKING     // no-op: needs Clang >= 20
#define AIDA_NONALLOCATING   // no-op: needs Clang >= 20
#define AIDA_BLOCKING        // no-op: needs Clang >= 20
#define AIDA_ALLOCATING      // no-op: needs Clang >= 20
#define AIDA_EFFECT_ESCAPE_BEGIN(reason)
#define AIDA_EFFECT_ESCAPE_END

#endif  // AIDA_FUNCTION_EFFECTS_AVAILABLE

#endif  // AIDA_UTIL_FUNCTION_EFFECTS_H_
