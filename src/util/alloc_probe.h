#ifndef AIDA_UTIL_ALLOC_PROBE_H_
#define AIDA_UTIL_ALLOC_PROBE_H_

#include <cstdint>

namespace aida::util {

/// Runtime allocation accounting — the compiler-independent backstop of
/// the function-effect discipline (util/function_effects.h). The Clang
/// analysis proves "this annotated path cannot reach operator new"; the
/// probe measures the same property on any compiler, in the configuration
/// the benchmarks actually run: alloc_probe.cc interposes the global
/// `operator new` / `operator delete` families behind thread-local
/// counters, so a scope can assert "this code performed N allocations on
/// this thread" exactly, with zero synchronization on the counting path.
///
/// Linking model: the interposing definitions live in the same
/// translation unit as these accessor functions. A binary that calls any
/// of them therefore pulls the interposition in (static-library member
/// selection), while binaries that never reference the probe keep the
/// stock allocator — the probe cannot perturb what it does not measure.
///
/// The probe compiles itself out under ASan/TSan/MSan (the sanitizer
/// runtimes own the allocator there) and when AIDA_DISABLE_ALLOC_PROBE
/// is defined; AllocProbeAvailable() reports which world the binary is
/// in, and tests GTEST_SKIP on false.
///
/// Counting contract:
///  * every successful `new` / `new[]` (throwing, nothrow and aligned
///    forms) increments `allocations` and adds the requested byte count
///    to `bytes_allocated` on the calling thread;
///  * every `delete` / `delete[]` (all forms) with a non-null pointer
///    increments `deallocations` on the calling thread — so paired
///    new[]/delete[] on one thread leave allocations == deallocations;
///  * counters are per-thread and monotone; cross-thread frees are
///    counted where they happen (a handoff shows up as +1 allocations
///    here, +1 deallocations there).
struct AllocProbeCounters {
  uint64_t allocations = 0;
  uint64_t deallocations = 0;
  uint64_t bytes_allocated = 0;
};

/// True when the interposed operator new/delete is live in this binary.
/// False under sanitizers or when the probe was compiled out — callers
/// (tests, bench_serve) must treat counters as meaningless then.
bool AllocProbeAvailable();

/// Cumulative counters of the calling thread since thread start.
AllocProbeCounters ThisThreadAllocCounts();

/// RAII window over the calling thread's counters: construct at the top
/// of the region under audit, read the deltas afterwards.
///
///   util::ScopedAllocationCount probe;
///   system.Disambiguate(problem, options);
///   uint64_t allocs = probe.allocations();   // exact, this thread only
///
/// Nesting is natural (each scope snapshots its own baseline). The scope
/// must be read on the thread that constructed it.
class ScopedAllocationCount {
 public:
  ScopedAllocationCount() : start_(ThisThreadAllocCounts()) {}

  uint64_t allocations() const {
    return ThisThreadAllocCounts().allocations - start_.allocations;
  }
  uint64_t deallocations() const {
    return ThisThreadAllocCounts().deallocations - start_.deallocations;
  }
  uint64_t bytes_allocated() const {
    return ThisThreadAllocCounts().bytes_allocated - start_.bytes_allocated;
  }

 private:
  AllocProbeCounters start_;
};

}  // namespace aida::util

#endif  // AIDA_UTIL_ALLOC_PROBE_H_
