#include "util/mutex.h"

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "util/status.h"

namespace aida::util {

namespace {

void DefaultViolationHandler(const LockRankViolation& violation) {
  std::fprintf(stderr,
               "lock-rank inversion: acquiring rank %d while holding rank %d "
               "(ranks must strictly increase in acquisition order; see "
               "util/lock_ranks.h)\n",
               violation.acquiring_rank, violation.held_rank);
  std::abort();
}

std::atomic<LockRankViolationHandler> g_violation_handler{
    &DefaultViolationHandler};

std::atomic<bool> g_rank_checking{
#ifdef NDEBUG
    false
#else
    true
#endif
};

/// Ranks of the ranked mutexes the current thread holds, in acquisition
/// order. Unranked mutexes never enter the stack, so the common
/// release-build path (checking off) touches it not at all and a ranked
/// debug-build acquisition costs one push/pop on a thread-local vector.
std::vector<int>& HeldRanks() {
  thread_local std::vector<int> held;
  return held;
}

}  // namespace

LockRankViolationHandler SetLockRankViolationHandler(
    LockRankViolationHandler handler) {
  if (handler == nullptr) handler = &DefaultViolationHandler;
  return g_violation_handler.exchange(handler);
}

void EnableLockRankChecking(bool enabled) {
  g_rank_checking.store(enabled, std::memory_order_relaxed);
}

bool LockRankCheckingEnabled() {
  return g_rank_checking.load(std::memory_order_relaxed);
}

void Mutex::MarkAcquired() {
  holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  if (rank_ == kNoLockRank || !LockRankCheckingEnabled()) return;
  std::vector<int>& held = HeldRanks();
  if (!held.empty() && held.back() >= rank_) {
    LockRankViolation violation;
    violation.held_rank = held.back();
    violation.acquiring_rank = rank_;
    g_violation_handler.load()(violation);
  }
  held.push_back(rank_);
}

void Mutex::MarkReleased() {
  holder_.store(std::thread::id(), std::memory_order_relaxed);
  if (rank_ == kNoLockRank || !LockRankCheckingEnabled()) return;
  std::vector<int>& held = HeldRanks();
  // Search from the back: locks release in reverse acquisition order in
  // practice, and tolerating an absent entry keeps a mid-run
  // EnableLockRankChecking toggle harmless.
  for (size_t i = held.size(); i > 0; --i) {
    if (held[i - 1] == rank_) {
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i - 1));
      return;
    }
  }
}

void Mutex::AssertHeld() const {
  AIDA_DCHECK(holder_.load(std::memory_order_relaxed) ==
              std::this_thread::get_id());
}

void CondVar::Wait(Mutex& mutex) {
  mutex.MarkReleased();
  // Adopt the already-held std::mutex so the wait uses the native
  // condition_variable fast path, then hand ownership back to the
  // wrapper's bookkeeping on wakeup.
  std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
  mutex.MarkAcquired();
}

bool CondVar::WaitUntil(Mutex& mutex,
                        std::chrono::steady_clock::time_point deadline) {
  mutex.MarkReleased();
  std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
  const std::cv_status status = cv_.wait_until(lock, deadline);
  lock.release();
  mutex.MarkAcquired();
  return status == std::cv_status::no_timeout;
}

}  // namespace aida::util
