#ifndef AIDA_UTIL_CANCELLATION_H_
#define AIDA_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>

namespace aida::util {

/// Cooperative cancellation handle for one unit of work: an explicit
/// Cancel() flag plus an optional absolute deadline. Consumers poll
/// cancelled() at their own granularity — NED systems between and inside
/// their phases (candidate/local features, batched relatedness, solver
/// iterations), the task engine before running each spawned task — and
/// bail out early with whatever they have. Checking is cooperative: code
/// that ignores the token simply runs to completion, and the serving
/// layer still enforces the deadline on the result's status.
///
/// Lives in util/ (not core/) so the task scheduler can integrate with
/// it without depending on the NED layer; core re-exports it as
/// core::CancellationToken for existing call sites.
class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// A token that never expires on its own (Cancel() only).
  CancellationToken() = default;

  /// A token that additionally trips once `deadline` passes.
  explicit CancellationToken(Clock::time_point deadline)
      : deadline_(deadline) {}

  /// Requests cancellation. Safe from any thread, idempotent.
  void Cancel() const { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once Cancel() was called or the deadline passed. The flag
  /// latches, so a token observed cancelled stays cancelled.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (deadline_ != Clock::time_point::max() && Clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  Clock::time_point deadline() const { return deadline_; }

 private:
  mutable std::atomic<bool> cancelled_{false};
  Clock::time_point deadline_ = Clock::time_point::max();
};

}  // namespace aida::util

#endif  // AIDA_UTIL_CANCELLATION_H_
