#ifndef AIDA_UTIL_LOCK_RANKS_H_
#define AIDA_UTIL_LOCK_RANKS_H_

namespace aida::util::lock_rank {

/// The global lock order of the concurrency stack, one rank per mutex
/// family. A thread may only acquire a mutex whose rank is STRICTLY
/// GREATER than every ranked mutex it already holds; the debug lock-rank
/// checker in util::Mutex reports any inversion at the exact acquisition
/// site, independent of whether the inverted interleaving ever deadlocks
/// in a test run.
///
/// Ranks encode the real nesting of the stack (outermost first):
///
///   NedService::Stop           holds kServiceStop, then closes the
///                              bounded queue (kBoundedQueue) and joins
///                              the pool (kWorkerPool);
///   SnapshotRegistry reloads   hold kSnapshotPublish while building a
///                              snapshot, whose CandidateModelStore and
///                              RelatednessCache locks are leaves;
///   request processing         takes kBoundedQueue (Pop), releases it,
///                              then hits kServiceMetrics /
///                              kCandidateStore / kRelatednessShard one
///                              at a time.
///
/// Gaps of 100 leave room for future layers without renumbering.
/// DESIGN.md §6 documents the order next to the annotation conventions.
inline constexpr int kServiceStop = 100;      // serve::NedService::stop_mutex_
inline constexpr int kSnapshotPublish = 200;  // kb::SnapshotRegistry::publish_mutex_
inline constexpr int kBoundedQueue = 300;     // serve::BoundedQueue<T>::mutex_
inline constexpr int kWorkerPool = 400;       // util::WorkerPool::mutex_
inline constexpr int kTaskScheduler = 450;    // task::Scheduler::inject_mutex_ (overflow queue + sleep/wake)
inline constexpr int kServiceMetrics = 500;   // serve::ServiceMetrics WorkerSlot::generations_mutex (one per worker slot)
inline constexpr int kCandidateStore = 600;   // core::CandidateModelStore::mutex_
inline constexpr int kRelatednessShard = 700; // core::RelatednessCache::Shard::mutex
inline constexpr int kParallelForState = 800; // util::WorkerPool::ParallelFor call state (leaf)
inline constexpr int kTaskGroup = 850;        // task::TaskGroup::mutex_ (fork-join completion state, leaf)

}  // namespace aida::util::lock_rank

#endif  // AIDA_UTIL_LOCK_RANKS_H_
