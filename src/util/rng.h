#ifndef AIDA_UTIL_RNG_H_
#define AIDA_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aida::util {

/// Deterministic pseudo-random number generator (xoshiro256**) with
/// convenience samplers. All synthetic-data generation in the library is
/// driven through this class so experiments are reproducible from a seed.
class Rng {
 public:
  /// Seeds the generator; equal seeds produce equal streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal sample (Box-Muller).
  double Gaussian();

  /// Geometric-ish sample: number of Bernoulli(p) failures before the first
  /// success, capped at `cap`.
  int Geometric(double p, int cap);

  /// Samples an index in [0, weights.size()) proportional to `weights`.
  /// All weights must be >= 0 with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Forks a new generator whose stream is decorrelated from this one.
  Rng Fork();

 private:
  uint64_t state_[4];
};

/// Samples ranks 1..n with P(rank=k) proportional to 1/k^exponent.
/// Precomputes the CDF once; sampling is O(log n).
class ZipfSampler {
 public:
  /// `n` must be >= 1; `exponent` is the Zipf skew (1.0 is classic Zipf).
  ZipfSampler(size_t n, double exponent);

  /// Returns a 0-based index in [0, n) with Zipfian head skew.
  size_t Sample(Rng& rng) const;

  /// Probability mass of 0-based index `i`.
  double Pmf(size_t i) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace aida::util

#endif  // AIDA_UTIL_RNG_H_
