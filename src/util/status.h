#ifndef AIDA_UTIL_STATUS_H_
#define AIDA_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

namespace aida::util {

/// Error categories used throughout the library. The library does not use
/// C++ exceptions; fallible operations return `Status` or `StatusOr<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIoError = 8,
  kResourceExhausted = 9,
  kDeadlineExceeded = 10,
  kCancelled = 11,
};

/// Returns a human-readable name for `code` ("OK", "NOT_FOUND", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result, modeled after the status types
/// used by RocksDB and Abseil. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// Either a value of type `T` or an error `Status`. Accessing `value()` on
/// an error result fails an AIDA_CHECK in every build type (a raw `assert`
/// here would be silent undefined behavior in release), so callers must
/// check `ok()` first.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit by design, mirroring absl::StatusOr).
  StatusOr(T value) : status_(), value_(std::move(value)) {}

  /// Constructs from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {
    AIDA_CHECK(!status_.ok(), "StatusOr constructed from an OK Status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckHoldsValue();
    return value_;
  }
  T& value() & {
    CheckHoldsValue();
    return value_;
  }
  T&& value() && {
    CheckHoldsValue();
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHoldsValue() const {
    AIDA_CHECK(ok(), "StatusOr accessed without a value: %s",
               status_.ToString().c_str());
  }

  Status status_;
  T value_{};
};

}  // namespace aida::util

#endif  // AIDA_UTIL_STATUS_H_
