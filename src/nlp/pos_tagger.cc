#include "nlp/pos_tagger.h"

#include <cctype>
#include <string>
#include <unordered_set>

#include "util/string_util.h"

namespace aida::nlp {

namespace {

const std::unordered_set<std::string>& Determiners() {
  static const auto& set = *new std::unordered_set<std::string>{
      "a", "an", "the", "this", "that", "these", "those", "some", "any",
      "each", "every", "no"};
  return set;
}

const std::unordered_set<std::string>& Prepositions() {
  static const auto& set = *new std::unordered_set<std::string>{
      "of", "in", "on", "at", "by", "for", "with", "about", "against",
      "between", "into", "through", "during", "before", "after", "above",
      "below", "to", "from", "up", "down", "under", "over"};
  return set;
}

const std::unordered_set<std::string>& Pronouns() {
  static const auto& set = *new std::unordered_set<std::string>{
      "i", "you", "he", "she", "it", "we", "they", "him", "her", "them",
      "his", "hers", "its", "their", "our", "my", "your", "who", "whom",
      "which", "whose"};
  return set;
}

const std::unordered_set<std::string>& Conjunctions() {
  static const auto& set = *new std::unordered_set<std::string>{
      "and", "or", "but", "nor", "so", "yet", "because", "although",
      "while", "whereas", "if", "unless"};
  return set;
}

const std::unordered_set<std::string>& CommonVerbs() {
  static const auto& set = *new std::unordered_set<std::string>{
      "is",   "are",  "was",  "were", "be",    "been",  "being", "am",
      "has",  "have", "had",  "do",   "does",  "did",   "will",  "would",
      "can",  "could", "may", "might", "shall", "should", "must",
      "said", "says", "made", "make", "took",  "take",  "went",  "go",
      "won",  "wins", "lost", "beat", "played", "plays", "wrote", "writes",
      "released", "performed", "recorded", "announced", "revealed",
      "signed", "scored", "founded", "joined", "led", "met"};
  return set;
}

bool EndsWith(const std::string& s, const char* suffix) {
  std::string suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

}  // namespace

const char* PosTagLabel(PosTag tag) {
  switch (tag) {
    case PosTag::kNoun:
      return "NN";
    case PosTag::kProperNoun:
      return "NNP";
    case PosTag::kVerb:
      return "VB";
    case PosTag::kAdjective:
      return "JJ";
    case PosTag::kAdverb:
      return "RB";
    case PosTag::kDeterminer:
      return "DT";
    case PosTag::kPreposition:
      return "IN";
    case PosTag::kPronoun:
      return "PRP";
    case PosTag::kConjunction:
      return "CC";
    case PosTag::kNumber:
      return "CD";
    case PosTag::kPunctuation:
      return "PUNCT";
    case PosTag::kOther:
      return "X";
  }
  return "X";
}

PosTagger::PosTagger() = default;

std::vector<PosTag> PosTagger::Tag(const text::TokenSequence& tokens) const {
  std::vector<PosTag> tags;
  tags.reserve(tokens.size());
  bool sentence_initial = true;
  for (const text::Token& token : tokens) {
    tags.push_back(TagOne(token, sentence_initial));
    sentence_initial = token.sentence_final_punct;
  }
  return tags;
}

PosTag PosTagger::TagOne(const text::Token& token,
                         bool sentence_initial) const {
  const std::string& text = token.text;
  if (text.empty()) return PosTag::kOther;
  unsigned char first = static_cast<unsigned char>(text.front());
  if (std::ispunct(first) && text.size() == 1) return PosTag::kPunctuation;
  if (std::isdigit(first)) return PosTag::kNumber;

  std::string lower = util::ToLower(text);
  if (Determiners().count(lower)) return PosTag::kDeterminer;
  if (Prepositions().count(lower)) return PosTag::kPreposition;
  if (Pronouns().count(lower)) return PosTag::kPronoun;
  if (Conjunctions().count(lower)) return PosTag::kConjunction;
  if (CommonVerbs().count(lower)) return PosTag::kVerb;

  // Proper nouns: capitalized in a non-sentence-initial position, or
  // all-caps acronyms anywhere.
  if (util::IsAllUpper(text) && text.size() >= 2) return PosTag::kProperNoun;
  if (token.capitalized && !sentence_initial) return PosTag::kProperNoun;

  if (EndsWith(lower, "ly")) return PosTag::kAdverb;
  if (EndsWith(lower, "ing") || EndsWith(lower, "ed")) return PosTag::kVerb;
  if (EndsWith(lower, "ous") || EndsWith(lower, "ful") ||
      EndsWith(lower, "ive") || EndsWith(lower, "ical") ||
      EndsWith(lower, "able") || EndsWith(lower, "ian")) {
    return PosTag::kAdjective;
  }
  return PosTag::kNoun;
}

}  // namespace aida::nlp
