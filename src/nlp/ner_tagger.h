#ifndef AIDA_NLP_NER_TAGGER_H_
#define AIDA_NLP_NER_TAGGER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "kb/dictionary.h"
#include "text/token.h"

namespace aida::nlp {

/// A recognized named-entity mention span.
struct MentionSpan {
  /// Surface text, whitespace-joined.
  std::string text;
  size_t begin_token = 0;
  size_t end_token = 0;  // exclusive
};

/// Recognizes named-entity mentions in tokenized text. Stands in for the
/// Stanford NER tagger (Section 3.3.1): candidate spans are maximal runs of
/// capitalized tokens (and all-caps acronyms), preferring the longest span
/// the dictionary knows as a name — a gazetteer-backed recognizer that is
/// reliable on the synthetic news corpora.
class NerTagger {
 public:
  struct Options {
    /// Maximum mention length in tokens.
    size_t max_span_tokens = 4;
    /// If true, spans absent from the dictionary are still emitted when
    /// they are capitalized multi-token runs (possible emerging entities).
    bool emit_unknown_spans = true;
  };

  /// `dictionary` provides the gazetteer; it must outlive the tagger.
  explicit NerTagger(const kb::Dictionary* dictionary);
  NerTagger(const kb::Dictionary* dictionary, Options options);

  /// Finds non-overlapping mention spans, left to right, longest match
  /// first.
  std::vector<MentionSpan> Recognize(const text::TokenSequence& tokens) const;

 private:
  const kb::Dictionary* dictionary_;
  Options options_;
};

}  // namespace aida::nlp

#endif  // AIDA_NLP_NER_TAGGER_H_
