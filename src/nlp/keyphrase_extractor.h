#ifndef AIDA_NLP_KEYPHRASE_EXTRACTOR_H_
#define AIDA_NLP_KEYPHRASE_EXTRACTOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "nlp/pos_tagger.h"
#include "text/token.h"

namespace aida::nlp {

/// A keyphrase candidate extracted from text: the normalized phrase text
/// plus its token span in the source sequence.
struct ExtractedPhrase {
  std::string text;
  size_t begin_token = 0;
  size_t end_token = 0;  // exclusive
};

/// Extracts keyphrase candidates from tagged text using the
/// part-of-speech patterns of Appendix A: maximal proper-noun groups and
/// Justeson-Katz style technical terms
/// `((Adj | Noun)+ | ((Adj | Noun)* (Noun Prep)?) (Adj | Noun)*) Noun`.
/// In practice this reduces to noun groups optionally joined by a single
/// preposition ("school of martial arts").
class KeyphraseExtractor {
 public:
  struct Options {
    /// Longest phrase emitted, in tokens.
    size_t max_phrase_tokens = 5;
    /// Whether single-token nouns are emitted (proper nouns always are).
    bool allow_unigrams = true;
  };

  KeyphraseExtractor();
  explicit KeyphraseExtractor(Options options);

  /// Extracts phrases from `tokens` tagged with `tags` (parallel arrays).
  std::vector<ExtractedPhrase> Extract(const text::TokenSequence& tokens,
                                       const std::vector<PosTag>& tags) const;

 private:
  Options options_;
};

}  // namespace aida::nlp

#endif  // AIDA_NLP_KEYPHRASE_EXTRACTOR_H_
