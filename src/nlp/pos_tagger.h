#ifndef AIDA_NLP_POS_TAGGER_H_
#define AIDA_NLP_POS_TAGGER_H_

#include <vector>

#include "text/token.h"

namespace aida::nlp {

/// Coarse part-of-speech tagset sufficient for the keyphrase extraction
/// patterns of Appendix A (noun groups, adjectives, prepositions).
enum class PosTag {
  kNoun,
  kProperNoun,
  kVerb,
  kAdjective,
  kAdverb,
  kDeterminer,
  kPreposition,
  kPronoun,
  kConjunction,
  kNumber,
  kPunctuation,
  kOther,
};

/// Returns a short label ("NN", "NNP", ...) for diagnostics.
const char* PosTagLabel(PosTag tag);

/// Lexicon- and suffix-based part-of-speech tagger. This stands in for the
/// Stanford POS tagger the paper uses (Section 5.5.1): keyphrase harvesting
/// only needs reliable noun-group boundaries, which closed-class word lists
/// plus capitalization and suffix heuristics provide on news-style text.
class PosTagger {
 public:
  PosTagger();

  /// Tags each token of `tokens`; the result is parallel to the input.
  std::vector<PosTag> Tag(const text::TokenSequence& tokens) const;

 private:
  PosTag TagOne(const text::Token& token, bool sentence_initial) const;
};

}  // namespace aida::nlp

#endif  // AIDA_NLP_POS_TAGGER_H_
