#include "nlp/ner_tagger.h"

#include <unordered_set>

#include "text/stopwords.h"
#include "util/status.h"
#include "util/string_util.h"

namespace aida::nlp {

namespace {

bool IsNameToken(const text::Token& token) {
  if (token.text.empty()) return false;
  // Sentence-initial capitalized function words ("They", "The") are not
  // name material unless the dictionary says otherwise (checked later).
  if (token.capitalized &&
      !text::DefaultStopwords().Contains(token.text)) {
    return true;
  }
  return util::IsAllUpper(token.text) && token.text.size() >= 2;
}

std::string JoinSpan(const text::TokenSequence& tokens, size_t begin,
                     size_t end) {
  std::string text;
  for (size_t i = begin; i < end; ++i) {
    if (!text.empty()) text += ' ';
    text += tokens[i].text;
  }
  return text;
}

}  // namespace

NerTagger::NerTagger(const kb::Dictionary* dictionary)
    : NerTagger(dictionary, Options()) {}

NerTagger::NerTagger(const kb::Dictionary* dictionary, Options options)
    : dictionary_(dictionary), options_(options) {
  AIDA_CHECK(dictionary_ != nullptr);
}

std::vector<MentionSpan> NerTagger::Recognize(
    const text::TokenSequence& tokens) const {
  std::vector<MentionSpan> mentions;
  size_t i = 0;
  const size_t n = tokens.size();
  while (i < n) {
    if (!IsNameToken(tokens[i])) {
      ++i;
      continue;
    }
    // Maximal run of name tokens starting at i.
    size_t run_end = i;
    while (run_end < n && IsNameToken(tokens[run_end]) &&
           run_end - i < options_.max_span_tokens) {
      ++run_end;
    }
    // Longest dictionary match within the run.
    size_t match_end = 0;
    for (size_t end = run_end; end > i; --end) {
      if (dictionary_->Contains(JoinSpan(tokens, i, end))) {
        match_end = end;
        break;
      }
    }
    if (match_end > i) {
      mentions.push_back({JoinSpan(tokens, i, match_end), i, match_end});
      i = match_end;
    } else if (options_.emit_unknown_spans) {
      mentions.push_back({JoinSpan(tokens, i, run_end), i, run_end});
      i = run_end;
    } else {
      ++i;
    }
  }
  return mentions;
}

}  // namespace aida::nlp
