#include "nlp/keyphrase_extractor.h"

#include "util/string_util.h"

namespace aida::nlp {

namespace {

bool IsNounish(PosTag tag) {
  return tag == PosTag::kNoun || tag == PosTag::kProperNoun;
}

bool IsGroupMember(PosTag tag) {
  return IsNounish(tag) || tag == PosTag::kAdjective ||
         tag == PosTag::kNumber;
}

}  // namespace

KeyphraseExtractor::KeyphraseExtractor()
    : KeyphraseExtractor(Options()) {}

KeyphraseExtractor::KeyphraseExtractor(Options options)
    : options_(options) {}

std::vector<ExtractedPhrase> KeyphraseExtractor::Extract(
    const text::TokenSequence& tokens, const std::vector<PosTag>& tags) const {
  std::vector<ExtractedPhrase> phrases;
  const size_t n = tokens.size();

  auto emit = [&](size_t begin, size_t end) {
    if (end <= begin) return;
    size_t len = end - begin;
    if (len > options_.max_phrase_tokens) {
      // Keep the suffix; noun groups are right-headed.
      begin = end - options_.max_phrase_tokens;
      len = options_.max_phrase_tokens;
    }
    if (len == 1 && !options_.allow_unigrams &&
        tags[begin] != PosTag::kProperNoun) {
      return;
    }
    std::vector<std::string> words;
    words.reserve(len);
    for (size_t i = begin; i < end; ++i) {
      words.push_back(util::ToLower(tokens[i].text));
    }
    phrases.push_back({util::Join(words, " "), begin, end});
  };

  size_t i = 0;
  while (i < n) {
    if (!IsGroupMember(tags[i])) {
      ++i;
      continue;
    }
    // Scan a (Adj|Noun|Num)+ group; it qualifies if it ends in a noun.
    size_t begin = i;
    size_t last_noun = static_cast<size_t>(-1);
    while (i < n && IsGroupMember(tags[i])) {
      if (IsNounish(tags[i])) last_noun = i;
      ++i;
    }
    if (last_noun == static_cast<size_t>(-1)) continue;
    size_t end = last_noun + 1;

    // Optionally absorb one "Noun Prep NounGroup" continuation
    // ("school of martial arts").
    if (end < n && tags[end] == PosTag::kPreposition && end + 1 < n &&
        IsGroupMember(tags[end + 1])) {
      size_t j = end + 1;
      size_t cont_last_noun = static_cast<size_t>(-1);
      while (j < n && IsGroupMember(tags[j])) {
        if (IsNounish(tags[j])) cont_last_noun = j;
        ++j;
      }
      if (cont_last_noun != static_cast<size_t>(-1)) {
        emit(begin, cont_last_noun + 1);
        i = j;
        continue;
      }
    }
    emit(begin, end);
  }
  return phrases;
}

}  // namespace aida::nlp
