#ifndef AIDA_SERVE_NED_SERVICE_H_
#define AIDA_SERVE_NED_SERVICE_H_

#include <cstddef>
#include <future>
#include <memory>
#include <vector>

#include "core/ned_system.h"
#include "core/relatedness_cache.h"
#include "kb/snapshot_registry.h"
#include "serve/bounded_queue.h"
#include "serve/metrics.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/worker_pool.h"

namespace aida::task {
class Scheduler;
}  // namespace aida::task

namespace aida::serve {

/// Intra-request parallelism for heavy documents. When task_threads > 0
/// the service owns one work-stealing task::Scheduler shared by all
/// workers; a request whose document clears the mention-count admission
/// bar forks its disambiguation phases (per-mention local scoring, the
/// deduplicated relatedness batch, the solver's node scans) into tasks
/// on that engine — byte-identical results, lower per-request latency.
/// Small documents always take the untouched serial path, so enabling
/// the engine never taxes the common case.
struct ServeParallelismOptions {
  /// Dedicated task-engine threads; 0 disables intra-request parallelism
  /// entirely (the default — small-doc traffic gains nothing and the
  /// engine's threads would compete with the worker pool).
  size_t task_threads = 0;
  /// Cap on tasks per parallel region per request; 0 selects
  /// task_threads + 1 (the request's own worker participates in every
  /// region via its TaskGroup, so it counts as one executor).
  size_t max_tasks_per_request = 0;
  /// Admission: only documents with at least this many mentions fork
  /// tasks. The knob that keeps intra-request parallelism from cutting
  /// into inter-request throughput under load.
  size_t min_mentions = 8;
  /// Forwarded to core::ParallelismOptions (per-phase size gates).
  size_t min_batch_pairs = 64;
  size_t min_parallel_nodes = 2048;
};

/// Configuration of a NedService.
struct NedServiceOptions {
  /// Worker threads; 0 selects the hardware concurrency.
  size_t num_threads = 0;
  /// Bound on requests *waiting* for a worker (in-flight requests are on
  /// top). Submissions beyond the bound are shed with kResourceExhausted
  /// — the admission-control knob: size it to the queueing delay the
  /// deployment can tolerate, not to peak burst size.
  size_t queue_capacity = 1024;
  /// Deadline applied to requests that do not set their own;
  /// <= 0 means no deadline.
  double default_deadline_seconds = 0.0;
  /// Optional handle to the RelatednessCache shared by the served
  /// system's CachedRelatednessMeasure (not owned). The service does not
  /// need it to function — concurrent workers already reuse pairs through
  /// the measure — but wiring it here surfaces hit rates and evictions in
  /// Snapshot() next to the latency histograms.
  const core::RelatednessCache* shared_cache = nullptr;
  /// Intra-request task parallelism (default: disabled).
  ServeParallelismOptions parallelism;
};

/// Per-request overrides.
struct RequestOptions {
  /// Deadline for this request, from submission; <= 0 uses the service
  /// default. Expiry while queued completes the future with
  /// kDeadlineExceeded without running NED; expiry mid-flight is caught
  /// cooperatively between disambiguation phases (CancellationToken).
  double deadline_seconds = 0.0;
  /// Optional extended vocabulary forwarded to the NED system via
  /// core::DisambiguateOptions (not owned; must outlive the request's
  /// future). Callers using it across reloads must ensure it stays
  /// compatible with every generation that may serve the request.
  const core::ExtendedVocabulary* vocab = nullptr;
};

/// What a Submit future resolves to.
struct ServeResult {
  /// OK, or why the request produced no (complete) annotation:
  ///   kResourceExhausted — shed at admission, queue at capacity;
  ///   kCancelled         — submitted after stop, or flushed by Shutdown;
  ///   kDeadlineExceeded  — expired in queue or cancelled mid-flight;
  ///   kInternal          — the wrapped NedSystem threw.
  util::Status status;
  /// The annotation; meaningful only when status.ok(). On
  /// kDeadlineExceeded mid-flight it holds the partial (local-only)
  /// result with result.cancelled set.
  core::DisambiguationResult result;
  /// Time spent waiting in the bounded queue (0 for shed requests).
  double queue_seconds = 0.0;
  /// Time inside NedSystem::Disambiguate (0 if it never ran).
  double service_seconds = 0.0;
  /// Submission to future completion.
  double total_seconds = 0.0;
  /// KB snapshot generation the request ran against (0 when it never
  /// reached a worker — shed, expired in queue, flushed). During a hot
  /// reload concurrent responses may carry different generations; each is
  /// byte-identical to a serial run against that generation's KB.
  uint64_t generation = 0;
};

/// Service state surfaced by NedService::Snapshot.
struct NedServiceSnapshot {
  ServiceMetricsSnapshot metrics;
  /// Present when NedServiceOptions::shared_cache was wired, or when the
  /// active KB snapshot carries a per-generation RelatednessCache.
  bool has_cache = false;
  core::RelatednessCacheStats cache;
  /// Generation currently serving new dequeues (0 when the service wraps
  /// a snapshot without registry and generation tagging is trivial).
  uint64_t active_generation = 0;
  /// Present when the service is backed by a SnapshotRegistry: reload
  /// counters/durations and the retiring generations still pinned by
  /// in-flight requests.
  bool has_registry = false;
  kb::SnapshotRegistryStats registry;
};

/// The online NED serving layer: a persistent worker pool consuming a
/// bounded request queue in front of a versioned KB snapshot — the shape
/// the ROADMAP's "serve heavy traffic" north star asks for, where
/// documents arrive continuously with skewed sizes and latency
/// constraints instead of as one big offline batch, and the KB itself
/// evolves under traffic (emerging entities folded back in, bigger
/// worlds loaded) without a process restart.
///
///   auto registry = std::make_shared<kb::SnapshotRegistry>();
///   registry->Publish(std::move(kb), "initial").value();
///   NedService service(registry, {.num_threads = 8, .queue_capacity = 64});
///   std::future<ServeResult> f = service.Submit(problem, {.deadline_seconds = 0.05});
///   ServeResult r = f.get();           // r.status + r.generation
///   registry->ReloadFromFile("world_v2.kb");   // zero downtime
///
/// Guarantees:
///  * Submit never blocks: a request is admitted or its future completes
///    immediately with a rejection status (explicit load shedding).
///  * Every admitted request's future is satisfied exactly once — by a
///    worker, by deadline expiry, or by Shutdown's queue flush.
///  * Hot reload is invisible to requests: each worker pins the current
///    snapshot ONCE and refreshes the pin only when the registry's
///    generation counter moves — one relaxed uint64 load per dequeue, no
///    shared_ptr refcount traffic, no drain, no lock on the hot path.
///    In-flight requests finish on the generation they started; a
///    retiring generation's memory is freed once its last request
///    completes and every worker has re-pinned (at the latest when the
///    service drains).
///  * Completed (OK) results are byte-identical to a serial
///    Disambiguate against the same generation's system: workers add no
///    nondeterminism, and the per-snapshot RelatednessCache stores exact
///    values.
///  * Drain(): stop admission, finish queued + in-flight work, join.
///    Shutdown(): stop admission, fail queued work with kCancelled,
///    finish in-flight work, join. The destructor drains.
///
/// The served system must be const-thread-safe (Aida and all shipped
/// baselines are; anything KbSnapshot::Create builds qualifies).
/// Problems are copied into the service, but the token vector and
/// vocabulary they point to stay caller-owned and must outlive the
/// request's future.
class NedService {
 public:
  /// Serves one fixed snapshot (no hot reload). The service shares
  /// ownership: the snapshot lives at least as long as the service.
  explicit NedService(std::shared_ptr<const kb::KbSnapshot> snapshot,
                      NedServiceOptions options = {});

  /// Serves whatever generation `registry` has published; each worker
  /// tracks the registry's generation counter and re-pins on change. The
  /// registry must already have a published generation (Current() !=
  /// nullptr) and the service keeps it alive via shared ownership.
  explicit NedService(std::shared_ptr<const kb::SnapshotRegistry> registry,
                      NedServiceOptions options = {});

  /// The raw-pointer constructor is gone: a bare NedSystem* cannot pin
  /// the stack a request runs against, which is unsound under hot reload.
  /// Wrap the system instead:
  ///   NedService service(kb::KbSnapshot::WrapUnowned(system, "my-system"));
  NedService(const core::NedSystem*, NedServiceOptions = {}) = delete;

  /// Drains: accepted work completes before destruction returns.
  ~NedService();

  NedService(const NedService&) = delete;
  NedService& operator=(const NedService&) = delete;

  /// Submits one request. Always returns a valid future; see ServeResult
  /// for the outcome taxonomy. Thread-safe, never blocks.
  std::future<ServeResult> Submit(core::DisambiguationProblem problem,
                                  RequestOptions options = {});

  /// Blocking batch convenience: submits every problem with closed-loop
  /// backpressure (waits on its own outstanding futures instead of
  /// shedding when the queue fills), returns results parallel to the
  /// input. Requests can still expire against their deadlines or be
  /// cancelled by a concurrent Shutdown.
  std::vector<ServeResult> DisambiguateAll(
      const std::vector<core::DisambiguationProblem>& problems,
      RequestOptions options = {});

  /// Stops admission, completes all queued and in-flight requests, joins
  /// the workers. Idempotent; concurrent calls block until the stop
  /// finishes.
  void Drain();

  /// Stops admission, fails queued requests with kCancelled, completes
  /// in-flight requests, joins the workers. Idempotent.
  void Shutdown();

  /// Point-in-time metrics (plus shared-cache stats when wired). Safe to
  /// call at any time, including while the service runs full tilt.
  NedServiceSnapshot Snapshot() const;

  size_t num_threads() const { return num_threads_; }
  size_t queue_capacity() const { return queue_.capacity(); }
  /// The owned task engine; null when intra-request parallelism is off.
  task::Scheduler* scheduler() const { return scheduler_.get(); }
  /// True once Drain or Shutdown began; Submit is rejected from then on.
  bool stopped() const { return queue_.closed(); }

 private:
  using Clock = core::CancellationToken::Clock;

  struct Request {
    core::DisambiguationProblem problem;
    const core::ExtendedVocabulary* vocab = nullptr;
    std::promise<ServeResult> promise;
    Clock::time_point submit_time;
    Clock::time_point deadline;
  };

  NedService(std::shared_ptr<const kb::KbSnapshot> snapshot,
             std::shared_ptr<const kb::SnapshotRegistry> registry,
             NedServiceOptions options);

  /// The slow-path snapshot acquisition: one atomic shared_ptr load when
  /// registry-backed, a plain copy when fixed. Never null. Workers call
  /// this once at startup and after a generation change (detected via the
  /// registry's cheap generation counter); per-dequeue use would turn the
  /// shared_ptr refcount into a cross-core ping-pong line.
  std::shared_ptr<const kb::KbSnapshot> AcquireSnapshot() const {
    return registry_ != nullptr ? registry_->Current() : fixed_snapshot_;
  }

  /// One per pool thread: pop until the queue closes and empties. `slot`
  /// is the worker's private index into the per-worker metrics slots and
  /// its pinned-snapshot identity.
  void WorkerLoop(size_t slot);
  /// Runs (or expires) one request against `snapshot` and satisfies its
  /// promise.
  void Process(size_t slot, Request request,
               const std::shared_ptr<const kb::KbSnapshot>& snapshot);
  void Stop(bool flush_queued) AIDA_EXCLUDES(stop_mutex_);

  /// Exactly one of the two is set, fixed at construction.
  std::shared_ptr<const kb::KbSnapshot> fixed_snapshot_;
  std::shared_ptr<const kb::SnapshotRegistry> registry_;
  NedServiceOptions options_;
  size_t num_threads_;
  /// The shared work-stealing engine for intra-request parallelism; null
  /// when ServeParallelismOptions::task_threads is 0. Declared before
  /// pool_ so it is destroyed after the workers have joined — no request
  /// can still hold tasks when the engine's threads stop.
  std::unique_ptr<task::Scheduler> scheduler_;
  /// One cache-line-aligned slot per worker; constructed with
  /// num_threads_ so every worker owns a private slot.
  ServiceMetrics metrics_;
  BoundedQueue<Request> queue_;
  /// Serializes Drain/Shutdown; ranked before the queue and pool locks
  /// because Stop closes the queue and joins the pool while holding it.
  util::Mutex stop_mutex_{util::lock_rank::kServiceStop};
  // Declared after queue_ so it is destroyed first: the pool joins worker
  // loops, which only exit once the queue is closed.
  std::unique_ptr<util::WorkerPool> pool_ AIDA_GUARDED_BY(stop_mutex_);
};

/// Sums the DisambiguationStats of the completed (status OK) results,
/// skipping shed / expired / failed entries entirely — the serving-layer
/// counterpart of core::AggregateStats.
core::DisambiguationStats AggregateCompletedStats(
    const std::vector<ServeResult>& results);

}  // namespace aida::serve

#endif  // AIDA_SERVE_NED_SERVICE_H_
