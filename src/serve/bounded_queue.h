#ifndef AIDA_SERVE_BOUNDED_QUEUE_H_
#define AIDA_SERVE_BOUNDED_QUEUE_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "util/function_effects.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace aida::serve {

/// Why a BoundedQueue::TryPush was refused.
enum class AdmissionError {
  kQueueFull,  // load shedding: the bounded queue is at capacity
  kClosed,     // the queue no longer admits work (drain or shutdown)
};

/// A bounded multi-producer multi-consumer FIFO — the admission-control
/// point of the serving layer. Producers never block: TryPush either
/// admits the item or refuses immediately with the reason, which is what
/// lets an overloaded service shed load with an error instead of holding
/// client threads hostage (the "rejected-with-status, never blocked
/// forever" contract). Consumers block in Pop until an item arrives or
/// the queue is closed and empty.
///
/// Two close flavors mirror the service's two stop modes:
///  * CloseAdmission() — drain: refuse new items, let consumers finish
///    everything already queued;
///  * CloseAndFlush()  — shutdown: refuse new items AND hand back the
///    items still queued so the caller can fail them explicitly.
///
/// Wakeup discipline: a notify is issued only when a consumer is actually
/// parked in Pop (tracked by a waiter count under the lock). The naive
/// notify-per-push/notify-all-per-close pattern scales badly — at high
/// worker counts most notifies hit consumers that are busy processing,
/// each one a wasted futex syscall, and every close was a thundering
/// herd. Lost-wakeup safety is preserved because the waiter count and the
/// item/closed state change under the same mutex: a producer that sees
/// waiters_ == 0 knows every consumer will observe its item (or the
/// closed flag) before deciding to wait.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    AIDA_CHECK(capacity_ > 0, "BoundedQueue capacity must be positive");
  }

  /// Admits `item` unless the queue is full or closed; never blocks.
  /// On refusal the item is left untouched in the caller's hands.
  /// AIDA_NONBLOCKING states the "never parks" half of the admission
  /// contract; the two audited escapes below are the deliberate bounded
  /// effects (O(1) critical section, amortized deque chunk, futex wake).
  std::optional<AdmissionError> TryPush(T& item)
      AIDA_EXCLUDES(mutex_) AIDA_NONBLOCKING {
    bool wake = false;
    AIDA_EFFECT_ESCAPE_BEGIN(
        "bounded O(1) critical section (flag + size check + deque "
        "push_back); producers contend only with other O(1) holders, "
        "never with a parked consumer. The push_back allocates one deque "
        "chunk per ~chunk-size admissions — amortized, bounded by "
        "capacity, and T itself (ServiceRequest) is moved, not copied")
    {
      util::MutexLock lock(&mutex_);
      if (closed_) return AdmissionError::kClosed;
      if (items_.size() >= capacity_) return AdmissionError::kQueueFull;
      items_.push_back(std::move(item));
      wake = waiters_ > 0;
    }
    AIDA_EFFECT_ESCAPE_END
    if (wake) {
      AIDA_EFFECT_ESCAPE_BEGIN(
          "FUTEX_WAKE syscall: hands the CPU to a parked consumer without "
          "ever parking the producer")
      ready_.NotifyOne();
      AIDA_EFFECT_ESCAPE_END
    }
    return std::nullopt;
  }

  /// Blocks until an item is available (returns it) or the queue is both
  /// closed and empty (returns nullopt — the consumer's exit signal).
  /// AIDA_BLOCKING: parking here is the contract, and the marker keeps an
  /// annotated hot-path caller from absorbing it silently.
  std::optional<T> Pop() AIDA_EXCLUDES(mutex_) AIDA_BLOCKING {
    util::MutexLock lock(&mutex_);
    while (!closed_ && items_.empty()) {
      ++waiters_;
      ready_.Wait(mutex_);
      --waiters_;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops admission; queued items remain for consumers to drain.
  void CloseAdmission() AIDA_EXCLUDES(mutex_) {
    bool wake = false;
    {
      util::MutexLock lock(&mutex_);
      closed_ = true;
      wake = waiters_ > 0;
    }
    // Close must wake EVERY parked consumer (each needs to observe the
    // exit signal), but only when someone is parked at all.
    if (wake) ready_.NotifyAll();
  }

  /// Stops admission and removes everything still queued, returning it so
  /// the caller can complete each item with a cancellation status.
  std::vector<T> CloseAndFlush() AIDA_EXCLUDES(mutex_) {
    std::vector<T> flushed;
    bool wake = false;
    {
      util::MutexLock lock(&mutex_);
      closed_ = true;
      flushed.reserve(items_.size());
      while (!items_.empty()) {
        flushed.push_back(std::move(items_.front()));
        items_.pop_front();
      }
      wake = waiters_ > 0;
    }
    if (wake) ready_.NotifyAll();
    return flushed;
  }

  /// Queued (not in-flight) items right now — the service's depth gauge.
  size_t size() const AIDA_EXCLUDES(mutex_) {
    util::MutexLock lock(&mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const AIDA_EXCLUDES(mutex_) {
    util::MutexLock lock(&mutex_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable util::Mutex mutex_{util::lock_rank::kBoundedQueue};
  util::CondVar ready_;
  std::deque<T> items_ AIDA_GUARDED_BY(mutex_);
  bool closed_ AIDA_GUARDED_BY(mutex_) = false;
  /// Consumers currently parked inside Pop's wait loop; the gate that
  /// turns notifies into no-ops when nobody is listening.
  size_t waiters_ AIDA_GUARDED_BY(mutex_) = 0;
};

}  // namespace aida::serve

#endif  // AIDA_SERVE_BOUNDED_QUEUE_H_
