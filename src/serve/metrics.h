#ifndef AIDA_SERVE_METRICS_H_
#define AIDA_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "util/cacheline.h"
#include "util/check.h"
#include "util/function_effects.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace aida::serve {

/// Quantile/mean/max summary of one LatencyHistogram at snapshot time.
struct LatencySnapshot {
  uint64_t count = 0;
  double mean_seconds = 0.0;
  double max_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// A streaming latency histogram: fixed geometric buckets (ten per decade
/// from 1 microsecond to 1000 seconds), lock-free atomic counters, O(1)
/// Record. Quantiles are read from a consistent-enough snapshot of the
/// bucket counters while the service keeps recording — the p50/p95/p99
/// the load generator and the metrics registry report. Bucket resolution
/// bounds the quantile error at ~12% (one bucket width), plenty for tail
/// monitoring.
///
/// In the serving layer each worker owns a private histogram (one slot of
/// ServiceMetrics), so Record never contends; MergeSnapshot folds the
/// per-worker histograms into one distribution lazily at snapshot time.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one observation. Thread-safe, wait-free on x86. NaN and
  /// non-positive durations (clock hiccups) clamp to the zero bucket and
  /// contribute 0 to the running sum, so a bad clock sample can neither
  /// corrupt the quantiles nor poison the mean.
  void Record(double seconds) AIDA_NONBLOCKING;

  /// Summarizes everything recorded so far. Safe to call concurrently
  /// with Record; a racing observation is either in or out atomically.
  LatencySnapshot Snapshot() const;

  /// Summarizes the union of `count` histograms as one distribution —
  /// how the per-worker slots of ServiceMetrics aggregate. Quantiles are
  /// computed over the summed buckets, not averaged per worker, so a
  /// single slow worker moves the merged p99 exactly as it moves the
  /// service's real tail.
  static LatencySnapshot MergeSnapshot(const LatencyHistogram* const* parts,
                                       size_t count);

  /// Zeroes all buckets and summary counters.
  void Clear();

 private:
  // 10 buckets per decade over [1us, 1000s) plus an overflow bucket.
  static constexpr size_t kBucketsPerDecade = 10;
  static constexpr size_t kDecades = 9;
  static constexpr size_t kNumBuckets = kBucketsPerDecade * kDecades + 1;
  static constexpr double kMinSeconds = 1e-6;

  /// Maps a duration to its bucket. Zero, negative, and NaN durations all
  /// land in bucket 0 — the guard that keeps a clock hiccup from indexing
  /// out of range.
  static size_t BucketIndex(double seconds) AIDA_NONBLOCKING;
  static double BucketValue(size_t index);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> count_{0};
  /// Updated via util::AtomicAddDouble / AtomicMaxDouble CAS loops:
  /// std::atomic<double>::fetch_add is C++20-library-only and the max
  /// needs a reload-on-failure CAS to never lose a racing larger value.
  std::atomic<double> sum_seconds_{0.0};
  std::atomic<double> max_seconds_{0.0};
};

/// Outcome counters of the requests served against one KB snapshot
/// generation — how hot reload becomes observable in the metrics: during
/// a swap window two generations accumulate outcomes side by side, and a
/// generation whose counters stop moving has fully retired.
struct GenerationOutcomes {
  uint64_t generation = 0;
  uint64_t completed = 0;            // finished OK on this generation
  uint64_t failed = 0;               // system threw while on this generation
  uint64_t cancelled_in_flight = 0;  // deadline tripped mid-disambiguation
};

/// Point-in-time view of a ServiceMetrics registry. Counters are
/// cumulative since service construction; gauges are instantaneous.
struct ServiceMetricsSnapshot {
  // ---- throughput counters ----
  uint64_t submitted = 0;        // Submit calls observed
  uint64_t admitted = 0;         // accepted into the bounded queue
  uint64_t completed = 0;        // finished with an OK result
  uint64_t failed = 0;           // wrapped system threw; mapped to kInternal
  // ---- load-shedding / cancellation counters ----
  uint64_t rejected_queue_full = 0;   // shed at admission: queue at bound
  uint64_t rejected_closed = 0;       // submitted after drain/shutdown began
  uint64_t expired_in_queue = 0;      // deadline passed while still queued
  uint64_t cancelled_in_flight = 0;   // deadline tripped mid-disambiguation
  uint64_t cancelled_queued = 0;      // flushed by Shutdown before running
  // ---- gauges ----
  uint64_t queue_depth = 0;  // requests waiting in the bounded queue
  uint64_t in_flight = 0;    // requests currently inside Disambiguate
  // ---- intra-request parallelism counters ----
  uint64_t parallel_tasks = 0;   // tasks forked into the task engine
  uint64_t parallel_steals = 0;  // of those, run by a stealing thread
  // ---- rates ----
  double uptime_seconds = 0.0;
  double completed_per_second = 0.0;  // completed / uptime
  // ---- latency histograms ----
  LatencySnapshot queue_wait;     // submit -> dequeued by a worker
  LatencySnapshot service_time;   // inside NedSystem::Disambiguate
  LatencySnapshot total_latency;  // submit -> future satisfied (OK only)
  // ---- per-generation outcomes ----
  /// One entry per KB snapshot generation that served at least one
  /// request, ascending by generation. Empty for pre-snapshot metrics
  /// consumers that never tag a generation.
  std::vector<GenerationOutcomes> generations;

  /// Every submission is accounted exactly once across the outcome
  /// counters; true when the books balance (modulo requests still queued
  /// or in flight at snapshot time).
  uint64_t Resolved() const {
    return completed + failed + rejected_queue_full + rejected_closed +
           expired_in_queue + cancelled_in_flight + cancelled_queued;
  }
};

/// The metrics registry one NedService owns: throughput and shed
/// counters, queue/in-flight gauges, and the three latency histograms.
///
/// Layout is the whole point. The registry used to be one block of
/// globally shared atomics plus three shared 91-bucket histograms; at 8
/// workers every Record/fetch_add bounced the same cache lines between
/// cores, one visible slice of the negative worker scaling in
/// BENCH_serve.json. Now:
///
///  * worker-side events (started / completed / failed / expired /
///    cancelled, and all three histograms) go to a per-worker,
///    cache-line-aligned WorkerSlot indexed by the worker's slot id —
///    exactly one writer per line, zero cross-worker traffic;
///  * submit-side events (submitted / admitted / rejected / flushed),
///    which arrive on arbitrary client threads, stripe over a small set
///    of aligned counter blocks by thread hash;
///  * Snapshot() aggregates lazily: it sums the slots and merges the
///    per-worker histograms into one distribution, paying the cost once
///    per monitoring read instead of once per request.
///
/// All mutators are thread-safe and O(1); Snapshot is safe while workers
/// keep serving (counters may be mutually off by the few requests that
/// transition during the read — fine for monitoring).
class ServiceMetrics {
 public:
  /// `worker_slots` sizes the per-worker half of the registry; pass the
  /// service's worker count. Worker-side mutators take a `slot` in
  /// [0, worker_slots); each worker must use its own slot (that
  /// exclusivity is what removes the contention).
  explicit ServiceMetrics(size_t worker_slots = 1);

  // ---- submit-side events (any thread; striped by thread hash) ----
  void OnSubmitted() { Bump(&SubmitStripe::submitted); }
  void OnAdmitted() { Bump(&SubmitStripe::admitted); }
  void OnRejectedQueueFull() { Bump(&SubmitStripe::rejected_queue_full); }
  void OnRejectedClosed() { Bump(&SubmitStripe::rejected_closed); }
  void OnCancelledQueued() { Bump(&SubmitStripe::cancelled_queued); }

  // ---- worker-side events (one dedicated slot per worker) ----
  // All carry AIDA_NONBLOCKING: they run inside the warm worker's record
  // path, where a stray lock or allocation is a tail-latency bug the
  // effect analysis exists to catch. The one deliberate exception — the
  // per-slot generation map — is audited inside BumpGeneration.
  void OnExpiredInQueue(size_t slot, double queue_seconds) AIDA_NONBLOCKING {
    WorkerSlot& s = Slot(slot);
    s.expired_in_queue.fetch_add(1, std::memory_order_relaxed);
    s.queue_wait.Record(queue_seconds);
  }

  /// A worker picked the request up and is about to disambiguate.
  void OnStarted(size_t slot, double queue_seconds) AIDA_NONBLOCKING {
    WorkerSlot& s = Slot(slot);
    s.in_flight.fetch_add(1, std::memory_order_relaxed);
    s.queue_wait.Record(queue_seconds);
  }

  /// `generation` tags the outcome with the KB snapshot the request ran
  /// against (0 when the caller has no snapshot concept).
  void OnCompleted(size_t slot, uint64_t generation, double service_seconds,
                   double total_seconds) AIDA_NONBLOCKING {
    WorkerSlot& s = Slot(slot);
    s.completed.fetch_add(1, std::memory_order_relaxed);
    s.in_flight.fetch_sub(1, std::memory_order_relaxed);
    s.service_time.Record(service_seconds);
    s.total_latency.Record(total_seconds);
    BumpGeneration(s, generation, &GenerationOutcomes::completed);
  }

  void OnCancelledInFlight(size_t slot, uint64_t generation) AIDA_NONBLOCKING {
    WorkerSlot& s = Slot(slot);
    s.cancelled_in_flight.fetch_add(1, std::memory_order_relaxed);
    s.in_flight.fetch_sub(1, std::memory_order_relaxed);
    BumpGeneration(s, generation, &GenerationOutcomes::cancelled_in_flight);
  }

  void OnFailed(size_t slot, uint64_t generation) AIDA_NONBLOCKING {
    WorkerSlot& s = Slot(slot);
    s.failed.fetch_add(1, std::memory_order_relaxed);
    s.in_flight.fetch_sub(1, std::memory_order_relaxed);
    BumpGeneration(s, generation, &GenerationOutcomes::failed);
  }

  /// Task-engine work one request performed (from its
  /// DisambiguationStats); no-op for serial requests so the common path
  /// stays free of extra RMWs.
  void OnParallelWork(size_t slot, uint64_t tasks,
                      uint64_t steals) AIDA_NONBLOCKING {
    if (tasks == 0 && steals == 0) return;
    WorkerSlot& s = Slot(slot);
    s.parallel_tasks.fetch_add(tasks, std::memory_order_relaxed);
    s.parallel_steals.fetch_add(steals, std::memory_order_relaxed);
  }

  /// `queue_depth` is the owning service's current bounded-queue size —
  /// the one gauge the registry cannot observe on its own.
  ServiceMetricsSnapshot Snapshot(size_t queue_depth) const;

  size_t worker_slots() const { return slots_.size(); }

 private:
  /// One worker's private share of the registry. alignas keeps two
  /// workers' slots off one cache line (util::kCacheLineSize is the
  /// hardware destructive-interference size where the library exposes
  /// it); each atomic has exactly one writer, so every fetch_add stays a
  /// core-local RMW on an exclusive line.
  struct alignas(util::kCacheLineSize) WorkerSlot {
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> failed{0};
    std::atomic<uint64_t> expired_in_queue{0};
    std::atomic<uint64_t> cancelled_in_flight{0};
    /// Net started-minus-finished on this worker; never negative because
    /// the same worker records both edges. Summed into the gauge.
    std::atomic<uint64_t> in_flight{0};
    /// Task-engine work charged to requests served from this slot.
    std::atomic<uint64_t> parallel_tasks{0};
    std::atomic<uint64_t> parallel_steals{0};
    LatencyHistogram queue_wait;
    LatencyHistogram service_time;
    LatencyHistogram total_latency;
    /// Per-slot generation outcomes: only this worker and Snapshot ever
    /// take the lock, so it is uncontended on the hot path (the old
    /// registry-global generations mutex serialized all workers once per
    /// request). Same kServiceMetrics rank; slots are locked one at a
    /// time, never nested.
    mutable util::Mutex generations_mutex{util::lock_rank::kServiceMetrics};
    std::map<uint64_t, GenerationOutcomes> generations
        AIDA_GUARDED_BY(generations_mutex);
  };

  /// Submit-side counters arrive on arbitrary client threads, so they
  /// stripe over a few aligned blocks by thread hash instead of sharing
  /// one hot line. Power-of-two count keeps the index mask-cheap.
  struct alignas(util::kCacheLineSize) SubmitStripe {
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> rejected_queue_full{0};
    std::atomic<uint64_t> rejected_closed{0};
    std::atomic<uint64_t> cancelled_queued{0};
  };
  static constexpr size_t kSubmitStripes = 8;

  WorkerSlot& Slot(size_t slot) {
    AIDA_DCHECK(slot < slots_.size());
    return slots_[slot < slots_.size() ? slot : 0];
  }

  void Bump(std::atomic<uint64_t> SubmitStripe::* counter);

  void BumpGeneration(WorkerSlot& slot, uint64_t generation,
                      uint64_t GenerationOutcomes::* counter)
      AIDA_EXCLUDES(slot.generations_mutex) AIDA_NONBLOCKING {
    if (generation == 0) return;
    // The inner braces keep the MutexLock destructor (the unlock) inside
    // the escape region — diagnostics attach to the scope's closing brace.
    AIDA_EFFECT_ESCAPE_BEGIN(
        "per-slot mutex: only this worker and Snapshot ever take it, the "
        "critical section is O(log generations) with ~2 live generations, "
        "and the map allocates only on first sight of a new generation "
        "(once per hot reload, not per request)")
    {
      util::MutexLock lock(&slot.generations_mutex);
      GenerationOutcomes& outcomes = slot.generations[generation];
      outcomes.generation = generation;
      ++(outcomes.*counter);
    }
    AIDA_EFFECT_ESCAPE_END
  }

  std::vector<WorkerSlot> slots_;
  std::array<SubmitStripe, kSubmitStripes> submit_stripes_;
  util::Stopwatch uptime_;
};

}  // namespace aida::serve

#endif  // AIDA_SERVE_METRICS_H_
