#ifndef AIDA_SERVE_METRICS_H_
#define AIDA_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace aida::serve {

/// Quantile/mean/max summary of one LatencyHistogram at snapshot time.
struct LatencySnapshot {
  uint64_t count = 0;
  double mean_seconds = 0.0;
  double max_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// A streaming latency histogram: fixed geometric buckets (ten per decade
/// from 1 microsecond to 1000 seconds), lock-free atomic counters, O(1)
/// Record. Quantiles are read from a consistent-enough snapshot of the
/// bucket counters while the service keeps recording — the p50/p95/p99
/// the load generator and the metrics registry report. Bucket resolution
/// bounds the quantile error at ~12% (one bucket width), plenty for tail
/// monitoring.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one observation. Thread-safe, wait-free on x86.
  void Record(double seconds);

  /// Summarizes everything recorded so far. Safe to call concurrently
  /// with Record; a racing observation is either in or out atomically.
  LatencySnapshot Snapshot() const;

  /// Zeroes all buckets and summary counters.
  void Clear();

 private:
  // 10 buckets per decade over [1us, 1000s) plus an overflow bucket.
  static constexpr size_t kBucketsPerDecade = 10;
  static constexpr size_t kDecades = 9;
  static constexpr size_t kNumBuckets = kBucketsPerDecade * kDecades + 1;
  static constexpr double kMinSeconds = 1e-6;

  static size_t BucketIndex(double seconds);
  static double BucketValue(size_t index);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_seconds_{0.0};
  std::atomic<double> max_seconds_{0.0};
};

/// Outcome counters of the requests served against one KB snapshot
/// generation — how hot reload becomes observable in the metrics: during
/// a swap window two generations accumulate outcomes side by side, and a
/// generation whose counters stop moving has fully retired.
struct GenerationOutcomes {
  uint64_t generation = 0;
  uint64_t completed = 0;            // finished OK on this generation
  uint64_t failed = 0;               // system threw while on this generation
  uint64_t cancelled_in_flight = 0;  // deadline tripped mid-disambiguation
};

/// Point-in-time view of a ServiceMetrics registry. Counters are
/// cumulative since service construction; gauges are instantaneous.
struct ServiceMetricsSnapshot {
  // ---- throughput counters ----
  uint64_t submitted = 0;        // Submit calls observed
  uint64_t admitted = 0;         // accepted into the bounded queue
  uint64_t completed = 0;        // finished with an OK result
  uint64_t failed = 0;           // wrapped system threw; mapped to kInternal
  // ---- load-shedding / cancellation counters ----
  uint64_t rejected_queue_full = 0;   // shed at admission: queue at bound
  uint64_t rejected_closed = 0;       // submitted after drain/shutdown began
  uint64_t expired_in_queue = 0;      // deadline passed while still queued
  uint64_t cancelled_in_flight = 0;   // deadline tripped mid-disambiguation
  uint64_t cancelled_queued = 0;      // flushed by Shutdown before running
  // ---- gauges ----
  uint64_t queue_depth = 0;  // requests waiting in the bounded queue
  uint64_t in_flight = 0;    // requests currently inside Disambiguate
  // ---- rates ----
  double uptime_seconds = 0.0;
  double completed_per_second = 0.0;  // completed / uptime
  // ---- latency histograms ----
  LatencySnapshot queue_wait;     // submit -> dequeued by a worker
  LatencySnapshot service_time;   // inside NedSystem::Disambiguate
  LatencySnapshot total_latency;  // submit -> future satisfied (OK only)
  // ---- per-generation outcomes ----
  /// One entry per KB snapshot generation that served at least one
  /// request, ascending by generation. Empty for pre-snapshot metrics
  /// consumers that never tag a generation.
  std::vector<GenerationOutcomes> generations;

  /// Every submission is accounted exactly once across the outcome
  /// counters; true when the books balance (modulo requests still queued
  /// or in flight at snapshot time).
  uint64_t Resolved() const {
    return completed + failed + rejected_queue_full + rejected_closed +
           expired_in_queue + cancelled_in_flight + cancelled_queued;
  }
};

/// The metrics registry one NedService owns: throughput and shed
/// counters, queue/in-flight gauges, and the three latency histograms.
/// All mutators are thread-safe and O(1); Snapshot is safe while workers
/// keep serving (counters may be mutually off by the few requests that
/// transition during the read — fine for monitoring).
class ServiceMetrics {
 public:
  ServiceMetrics() = default;

  void OnSubmitted() { Add(submitted_); }
  void OnAdmitted() { Add(admitted_); }
  void OnRejectedQueueFull() { Add(rejected_queue_full_); }
  void OnRejectedClosed() { Add(rejected_closed_); }
  void OnCancelledQueued() { Add(cancelled_queued_); }

  void OnExpiredInQueue(double queue_seconds) {
    Add(expired_in_queue_);
    queue_wait_.Record(queue_seconds);
  }

  /// A worker picked the request up and is about to disambiguate.
  void OnStarted(double queue_seconds) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    queue_wait_.Record(queue_seconds);
  }

  /// `generation` tags the outcome with the KB snapshot the request ran
  /// against (0 when the caller has no snapshot concept).
  void OnCompleted(uint64_t generation, double service_seconds,
                   double total_seconds) {
    Add(completed_);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    service_time_.Record(service_seconds);
    total_latency_.Record(total_seconds);
    BumpGeneration(generation, &GenerationOutcomes::completed);
  }

  void OnCancelledInFlight(uint64_t generation) {
    Add(cancelled_in_flight_);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    BumpGeneration(generation, &GenerationOutcomes::cancelled_in_flight);
  }

  void OnFailed(uint64_t generation) {
    Add(failed_);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    BumpGeneration(generation, &GenerationOutcomes::failed);
  }

  /// `queue_depth` is the owning service's current bounded-queue size —
  /// the one gauge the registry cannot observe on its own.
  ServiceMetricsSnapshot Snapshot(size_t queue_depth) const
      AIDA_EXCLUDES(generations_mutex_);

 private:
  static void Add(std::atomic<uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  /// Generation counters live behind a mutex rather than per-counter
  /// atomics: outcomes are recorded once per request (micro- to
  /// millisecond cadence), so one uncontended lock is noise next to the
  /// disambiguation itself, and a map keyed by generation handles the
  /// unbounded-generations case without lock-free gymnastics. The
  /// snapshot-acquisition hot path never touches this lock.
  void BumpGeneration(uint64_t generation,
                      uint64_t GenerationOutcomes::* counter)
      AIDA_EXCLUDES(generations_mutex_) {
    if (generation == 0) return;
    util::MutexLock lock(&generations_mutex_);
    GenerationOutcomes& outcomes = generations_[generation];
    outcomes.generation = generation;
    ++(outcomes.*counter);
  }

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> rejected_closed_{0};
  std::atomic<uint64_t> expired_in_queue_{0};
  std::atomic<uint64_t> cancelled_in_flight_{0};
  std::atomic<uint64_t> cancelled_queued_{0};
  std::atomic<uint64_t> in_flight_{0};
  LatencyHistogram queue_wait_;
  LatencyHistogram service_time_;
  LatencyHistogram total_latency_;
  util::Stopwatch uptime_;
  mutable util::Mutex generations_mutex_{util::lock_rank::kServiceMetrics};
  std::map<uint64_t, GenerationOutcomes> generations_
      AIDA_GUARDED_BY(generations_mutex_);
};

}  // namespace aida::serve

#endif  // AIDA_SERVE_METRICS_H_
