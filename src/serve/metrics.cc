#include "serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <thread>

#include "util/cacheline.h"

namespace aida::serve {

LatencyHistogram::LatencyHistogram() { Clear(); }

void LatencyHistogram::Clear() {
  for (std::atomic<uint64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_seconds_.store(0.0, std::memory_order_relaxed);
  max_seconds_.store(0.0, std::memory_order_relaxed);
}

size_t LatencyHistogram::BucketIndex(double seconds) AIDA_NONBLOCKING {
  // !(x > kMin) is deliberately inverted: it catches zero, negatives, AND
  // NaN (all comparisons with NaN are false), so a clock hiccup can only
  // ever land in bucket 0, never index out of range.
  if (!(seconds > kMinSeconds)) return 0;
  AIDA_EFFECT_ESCAPE_BEGIN(
      "libm log10 is lock- and allocation-free but opaque to the effect "
      "analysis (no visible body, no effect annotation in libm headers)")
  const double decades = std::log10(seconds / kMinSeconds);
  AIDA_EFFECT_ESCAPE_END
  const size_t index =
      static_cast<size_t>(decades * static_cast<double>(kBucketsPerDecade));
  return index >= kNumBuckets ? kNumBuckets - 1 : index;
}

double LatencyHistogram::BucketValue(size_t index) {
  // Geometric midpoint of the bucket's bounds — the value a quantile
  // falling into this bucket reports.
  const double exponent = (static_cast<double>(index) + 0.5) /
                          static_cast<double>(kBucketsPerDecade);
  return kMinSeconds * std::pow(10.0, exponent);
}

void LatencyHistogram::Record(double seconds) AIDA_NONBLOCKING {
  // Sanitize before every use of the value: NaN or negative durations
  // (clock steps backwards) become 0 so neither the sum nor the max can
  // be poisoned.
  if (!(seconds > 0.0)) seconds = 0.0;
  buckets_[BucketIndex(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  util::AtomicAddDouble(sum_seconds_, seconds);
  util::AtomicMaxDouble(max_seconds_, seconds);
}

LatencySnapshot LatencyHistogram::Snapshot() const {
  const LatencyHistogram* self = this;
  return MergeSnapshot(&self, 1);
}

LatencySnapshot LatencyHistogram::MergeSnapshot(
    const LatencyHistogram* const* parts, size_t count) {
  std::array<uint64_t, kNumBuckets> counts{};
  uint64_t total = 0;
  double sum = 0.0;
  double max = 0.0;
  for (size_t part = 0; part < count; ++part) {
    const LatencyHistogram& h = *parts[part];
    for (size_t i = 0; i < kNumBuckets; ++i) {
      const uint64_t c = h.buckets_[i].load(std::memory_order_relaxed);
      counts[i] += c;
      total += c;
    }
    sum += h.sum_seconds_.load(std::memory_order_relaxed);
    max = std::max(max, h.max_seconds_.load(std::memory_order_relaxed));
  }

  LatencySnapshot snapshot;
  snapshot.count = total;
  if (total == 0) return snapshot;
  snapshot.mean_seconds = sum / static_cast<double>(total);
  snapshot.max_seconds = max;

  // Walk the cumulative distribution once for all three quantiles. The
  // bucket totals (not count_) define the distribution so a Record racing
  // this snapshot cannot push a quantile past the recorded observations.
  const double targets[3] = {0.50, 0.95, 0.99};
  double* outputs[3] = {&snapshot.p50_seconds, &snapshot.p95_seconds,
                        &snapshot.p99_seconds};
  size_t next_target = 0;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets && next_target < 3; ++i) {
    cumulative += counts[i];
    while (next_target < 3 &&
           static_cast<double>(cumulative) >=
               targets[next_target] * static_cast<double>(total)) {
      *outputs[next_target] = BucketValue(i);
      ++next_target;
    }
  }
  return snapshot;
}

ServiceMetrics::ServiceMetrics(size_t worker_slots)
    : slots_(std::max<size_t>(1, worker_slots)) {}

void ServiceMetrics::Bump(std::atomic<uint64_t> SubmitStripe::* counter) {
  // One hash per thread, computed lazily on its first submit-side event;
  // the stripe count is a power of two so selection is a mask.
  static thread_local const size_t stripe =
      std::hash<std::thread::id>()(std::this_thread::get_id()) &
      (kSubmitStripes - 1);
  (submit_stripes_[stripe].*counter).fetch_add(1, std::memory_order_relaxed);
}

ServiceMetricsSnapshot ServiceMetrics::Snapshot(size_t queue_depth) const {
  ServiceMetricsSnapshot snapshot;
  for (const SubmitStripe& stripe : submit_stripes_) {
    snapshot.submitted += stripe.submitted.load(std::memory_order_relaxed);
    snapshot.admitted += stripe.admitted.load(std::memory_order_relaxed);
    snapshot.rejected_queue_full +=
        stripe.rejected_queue_full.load(std::memory_order_relaxed);
    snapshot.rejected_closed +=
        stripe.rejected_closed.load(std::memory_order_relaxed);
    snapshot.cancelled_queued +=
        stripe.cancelled_queued.load(std::memory_order_relaxed);
  }

  std::vector<const LatencyHistogram*> queue_waits, service_times, totals;
  queue_waits.reserve(slots_.size());
  service_times.reserve(slots_.size());
  totals.reserve(slots_.size());
  std::map<uint64_t, GenerationOutcomes> merged_generations;
  for (const WorkerSlot& slot : slots_) {
    snapshot.completed += slot.completed.load(std::memory_order_relaxed);
    snapshot.failed += slot.failed.load(std::memory_order_relaxed);
    snapshot.expired_in_queue +=
        slot.expired_in_queue.load(std::memory_order_relaxed);
    snapshot.cancelled_in_flight +=
        slot.cancelled_in_flight.load(std::memory_order_relaxed);
    snapshot.in_flight += slot.in_flight.load(std::memory_order_relaxed);
    snapshot.parallel_tasks +=
        slot.parallel_tasks.load(std::memory_order_relaxed);
    snapshot.parallel_steals +=
        slot.parallel_steals.load(std::memory_order_relaxed);
    queue_waits.push_back(&slot.queue_wait);
    service_times.push_back(&slot.service_time);
    totals.push_back(&slot.total_latency);
    util::MutexLock lock(&slot.generations_mutex);
    for (const auto& [generation, outcomes] : slot.generations) {
      GenerationOutcomes& merged = merged_generations[generation];
      merged.generation = generation;
      merged.completed += outcomes.completed;
      merged.failed += outcomes.failed;
      merged.cancelled_in_flight += outcomes.cancelled_in_flight;
    }
  }

  snapshot.queue_depth = queue_depth;
  snapshot.uptime_seconds = uptime_.ElapsedSeconds();
  snapshot.completed_per_second =
      snapshot.uptime_seconds > 0.0
          ? static_cast<double>(snapshot.completed) / snapshot.uptime_seconds
          : 0.0;
  snapshot.queue_wait =
      LatencyHistogram::MergeSnapshot(queue_waits.data(), queue_waits.size());
  snapshot.service_time = LatencyHistogram::MergeSnapshot(
      service_times.data(), service_times.size());
  snapshot.total_latency =
      LatencyHistogram::MergeSnapshot(totals.data(), totals.size());
  snapshot.generations.reserve(merged_generations.size());
  for (const auto& [generation, outcomes] : merged_generations) {
    snapshot.generations.push_back(outcomes);
  }
  return snapshot;
}

}  // namespace aida::serve
