#include "serve/metrics.h"

#include <cmath>

namespace aida::serve {

LatencyHistogram::LatencyHistogram() { Clear(); }

void LatencyHistogram::Clear() {
  for (std::atomic<uint64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_seconds_.store(0.0, std::memory_order_relaxed);
  max_seconds_.store(0.0, std::memory_order_relaxed);
}

size_t LatencyHistogram::BucketIndex(double seconds) {
  if (!(seconds > kMinSeconds)) return 0;  // also catches NaN
  const double decades = std::log10(seconds / kMinSeconds);
  const size_t index =
      static_cast<size_t>(decades * static_cast<double>(kBucketsPerDecade));
  return index >= kNumBuckets ? kNumBuckets - 1 : index;
}

double LatencyHistogram::BucketValue(size_t index) {
  // Geometric midpoint of the bucket's bounds — the value a quantile
  // falling into this bucket reports.
  const double exponent = (static_cast<double>(index) + 0.5) /
                          static_cast<double>(kBucketsPerDecade);
  return kMinSeconds * std::pow(10.0, exponent);
}

void LatencyHistogram::Record(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  buckets_[BucketIndex(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_seconds_.fetch_add(seconds, std::memory_order_relaxed);
  double observed = max_seconds_.load(std::memory_order_relaxed);
  while (seconds > observed &&
         !max_seconds_.compare_exchange_weak(observed, seconds,
                                             std::memory_order_relaxed)) {
  }
}

LatencySnapshot LatencyHistogram::Snapshot() const {
  std::array<uint64_t, kNumBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }

  LatencySnapshot snapshot;
  snapshot.count = total;
  if (total == 0) return snapshot;
  snapshot.mean_seconds =
      sum_seconds_.load(std::memory_order_relaxed) /
      static_cast<double>(total);
  snapshot.max_seconds = max_seconds_.load(std::memory_order_relaxed);

  // Walk the cumulative distribution once for all three quantiles. The
  // bucket totals (not count_) define the distribution so a Record racing
  // this snapshot cannot push a quantile past the recorded observations.
  const double targets[3] = {0.50, 0.95, 0.99};
  double* outputs[3] = {&snapshot.p50_seconds, &snapshot.p95_seconds,
                        &snapshot.p99_seconds};
  size_t next_target = 0;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets && next_target < 3; ++i) {
    cumulative += counts[i];
    while (next_target < 3 &&
           static_cast<double>(cumulative) >=
               targets[next_target] * static_cast<double>(total)) {
      *outputs[next_target] = BucketValue(i);
      ++next_target;
    }
  }
  return snapshot;
}

ServiceMetricsSnapshot ServiceMetrics::Snapshot(size_t queue_depth) const {
  ServiceMetricsSnapshot snapshot;
  snapshot.submitted = submitted_.load(std::memory_order_relaxed);
  snapshot.admitted = admitted_.load(std::memory_order_relaxed);
  snapshot.completed = completed_.load(std::memory_order_relaxed);
  snapshot.failed = failed_.load(std::memory_order_relaxed);
  snapshot.rejected_queue_full =
      rejected_queue_full_.load(std::memory_order_relaxed);
  snapshot.rejected_closed = rejected_closed_.load(std::memory_order_relaxed);
  snapshot.expired_in_queue =
      expired_in_queue_.load(std::memory_order_relaxed);
  snapshot.cancelled_in_flight =
      cancelled_in_flight_.load(std::memory_order_relaxed);
  snapshot.cancelled_queued =
      cancelled_queued_.load(std::memory_order_relaxed);
  snapshot.queue_depth = queue_depth;
  snapshot.in_flight = in_flight_.load(std::memory_order_relaxed);
  snapshot.uptime_seconds = uptime_.ElapsedSeconds();
  snapshot.completed_per_second =
      snapshot.uptime_seconds > 0.0
          ? static_cast<double>(snapshot.completed) / snapshot.uptime_seconds
          : 0.0;
  snapshot.queue_wait = queue_wait_.Snapshot();
  snapshot.service_time = service_time_.Snapshot();
  snapshot.total_latency = total_latency_.Snapshot();
  {
    util::MutexLock lock(&generations_mutex_);
    snapshot.generations.reserve(generations_.size());
    for (const auto& [generation, outcomes] : generations_) {
      snapshot.generations.push_back(outcomes);
    }
  }
  return snapshot;
}

}  // namespace aida::serve
