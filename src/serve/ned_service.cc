#include "serve/ned_service.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <exception>
#include <string>
#include <thread>
#include <utility>

#include "task/scheduler.h"
#include "util/stopwatch.h"

namespace aida::serve {
namespace {

using ServiceClock = core::CancellationToken::Clock;

double SecondsBetween(ServiceClock::time_point begin,
                      ServiceClock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

}  // namespace

NedService::NedService(std::shared_ptr<const kb::KbSnapshot> snapshot,
                       NedServiceOptions options)
    : NedService(std::move(snapshot), nullptr, options) {}

NedService::NedService(std::shared_ptr<const kb::SnapshotRegistry> registry,
                       NedServiceOptions options)
    : NedService(nullptr, std::move(registry), options) {}

NedService::NedService(std::shared_ptr<const kb::KbSnapshot> snapshot,
                       std::shared_ptr<const kb::SnapshotRegistry> registry,
                       NedServiceOptions options)
    : fixed_snapshot_(std::move(snapshot)),
      registry_(std::move(registry)),
      options_(options),
      num_threads_(options.num_threads != 0
                       ? options.num_threads
                       : std::max(1u, std::thread::hardware_concurrency())),
      metrics_(num_threads_),
      queue_(std::max<size_t>(1, options.queue_capacity)),
      pool_(std::make_unique<util::WorkerPool>(num_threads_)) {
  AIDA_CHECK((fixed_snapshot_ != nullptr) != (registry_ != nullptr),
             "NedService needs exactly one of snapshot or registry");
  // A registry-backed service needs a published generation before traffic
  // arrives: requests pin whatever AcquireSnapshot returns, and "nothing
  // published yet" is a configuration error, not a per-request condition.
  AIDA_CHECK(AcquireSnapshot() != nullptr,
             "registry must publish a generation before serving starts");
  if (options_.parallelism.task_threads > 0) {
    task::SchedulerOptions scheduler_options;
    scheduler_options.num_threads = options_.parallelism.task_threads;
    scheduler_ = std::make_unique<task::Scheduler>(scheduler_options);
  }
  for (size_t t = 0; t < num_threads_; ++t) {
    pool_->Submit([this, t] { WorkerLoop(t); });
  }
}

NedService::~NedService() { Drain(); }

std::future<ServeResult> NedService::Submit(
    core::DisambiguationProblem problem, RequestOptions options) {
  metrics_.OnSubmitted();

  Request request;
  request.problem = std::move(problem);
  request.vocab = options.vocab;
  request.submit_time = Clock::now();
  const double deadline_seconds = options.deadline_seconds > 0.0
                                      ? options.deadline_seconds
                                      : options_.default_deadline_seconds;
  request.deadline =
      deadline_seconds > 0.0
          ? request.submit_time + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double>(
                                          deadline_seconds))
          : Clock::time_point::max();
  std::future<ServeResult> future = request.promise.get_future();

  std::optional<AdmissionError> refused = queue_.TryPush(request);
  if (!refused) {
    metrics_.OnAdmitted();
    return future;
  }

  // Shed: the future completes here and now with the rejection status —
  // the caller is never parked on a full queue.
  ServeResult shed;
  shed.result.cancelled = true;
  if (*refused == AdmissionError::kQueueFull) {
    metrics_.OnRejectedQueueFull();
    shed.status = util::Status::ResourceExhausted(
        "request queue at capacity (" + std::to_string(queue_.capacity()) +
        "); load shed");
  } else {
    metrics_.OnRejectedClosed();
    shed.status =
        util::Status::Cancelled("service is draining or shut down");
  }
  request.promise.set_value(std::move(shed));
  return future;
}

std::vector<ServeResult> NedService::DisambiguateAll(
    const std::vector<core::DisambiguationProblem>& problems,
    RequestOptions options) {
  std::vector<ServeResult> results(problems.size());
  // Closed-loop backpressure: keep at most queue + workers of our own
  // requests outstanding, and on a shed submission (another client may be
  // filling the queue) wait for our oldest future before retrying.
  const size_t window = queue_.capacity() + num_threads_;
  std::deque<std::pair<size_t, std::future<ServeResult>>> outstanding;

  auto settle_oldest = [&] {
    auto [index, future] = std::move(outstanding.front());
    outstanding.pop_front();
    results[index] = future.get();
  };

  for (size_t i = 0; i < problems.size(); ++i) {
    for (;;) {
      while (outstanding.size() >= window) settle_oldest();
      std::future<ServeResult> future = Submit(problems[i], options);
      if (future.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        ServeResult ready = future.get();
        if (ready.status.code() == util::StatusCode::kResourceExhausted) {
          // Shed by concurrent load; make room and retry this problem.
          if (!outstanding.empty()) {
            settle_oldest();
          } else {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          continue;
        }
        results[i] = std::move(ready);  // rejected-closed or instant finish
      } else {
        outstanding.emplace_back(i, std::move(future));
      }
      break;
    }
  }
  while (!outstanding.empty()) settle_oldest();
  return results;
}

void NedService::WorkerLoop(size_t slot) {
  // Pin the snapshot once per worker, not once per dequeue. The old
  // per-dequeue AcquireSnapshot() was an atomic<shared_ptr> acquire —
  // a locked refcount RMW on the control block that every worker hit for
  // every request, ping-ponging one cache line across all cores. Now the
  // per-dequeue cost is one relaxed uint64 generation-counter load; the
  // refcount is touched only when a reload actually happened.
  std::shared_ptr<const kb::KbSnapshot> pinned = AcquireSnapshot();
  for (;;) {
    std::optional<Request> request = queue_.Pop();
    if (!request) return;
    if (registry_ != nullptr &&
        registry_->current_generation() != pinned->generation()) {
      pinned = registry_->Current();
    }
    Process(slot, std::move(*request), pinned);
  }
}

void NedService::Process(size_t slot, Request request,
                         const std::shared_ptr<const kb::KbSnapshot>& snapshot) {
  const Clock::time_point start = Clock::now();
  const double queue_seconds = SecondsBetween(request.submit_time, start);

  ServeResult out;
  out.queue_seconds = queue_seconds;

  // Deadline already gone: complete without paying for NED at all.
  if (start >= request.deadline) {
    metrics_.OnExpiredInQueue(slot, queue_seconds);
    out.status =
        util::Status::DeadlineExceeded("deadline expired while queued");
    out.result.cancelled = true;
    out.total_seconds = queue_seconds;
    request.promise.set_value(std::move(out));
    return;
  }

  metrics_.OnStarted(slot, queue_seconds);
  // `snapshot` is the worker's pinned generation: it stays alive for the
  // whole request (the worker holds the strong reference), and a reload
  // published mid-request is picked up at the NEXT dequeue.
  out.generation = snapshot->generation();
  core::CancellationToken token(request.deadline);
  core::DisambiguateOptions ned_options;
  ned_options.vocab = request.vocab;
  ned_options.cancel = &token;
  // Admission for intra-request parallelism: only heavy documents fork
  // tasks, so the engine accelerates the tail without taxing small-doc
  // throughput.
  if (scheduler_ != nullptr &&
      request.problem.mentions.size() >= options_.parallelism.min_mentions) {
    core::ParallelismOptions& par = ned_options.parallel;
    par.scheduler = scheduler_.get();
    par.max_tasks = options_.parallelism.max_tasks_per_request != 0
                        ? options_.parallelism.max_tasks_per_request
                        : options_.parallelism.task_threads + 1;
    par.min_batch_pairs = options_.parallelism.min_batch_pairs;
    par.min_parallel_nodes = options_.parallelism.min_parallel_nodes;
  }
  util::Stopwatch service_watch;
  try {
    out.result = snapshot->system().Disambiguate(request.problem, ned_options);
    metrics_.OnParallelWork(slot, out.result.stats.parallel_tasks,
                            out.result.stats.parallel_steals);
    out.service_seconds = service_watch.ElapsedSeconds();
    out.total_seconds = SecondsBetween(request.submit_time, Clock::now());
    if (out.result.cancelled) {
      // The system observed the token between phases and bailed out; the
      // partial (local-only) result rides along for best-effort callers.
      metrics_.OnCancelledInFlight(slot, out.generation);
      out.status = util::Status::DeadlineExceeded(
          "deadline expired during disambiguation");
    } else {
      metrics_.OnCompleted(slot, out.generation, out.service_seconds,
                           out.total_seconds);
    }
  } catch (const std::exception& error) {
    // The library never throws, but wrapped user systems may; a worker
    // must survive it, so the exception becomes a per-request status.
    out.service_seconds = service_watch.ElapsedSeconds();
    out.total_seconds = SecondsBetween(request.submit_time, Clock::now());
    out.result.cancelled = true;
    out.status = util::Status::Internal(std::string("NedSystem threw: ") +
                                        error.what());
    metrics_.OnFailed(slot, out.generation);
  } catch (...) {
    out.service_seconds = service_watch.ElapsedSeconds();
    out.total_seconds = SecondsBetween(request.submit_time, Clock::now());
    out.result.cancelled = true;
    out.status = util::Status::Internal("NedSystem threw a non-exception");
    metrics_.OnFailed(slot, out.generation);
  }
  request.promise.set_value(std::move(out));
}

void NedService::Stop(bool flush_queued) {
  util::MutexLock lock(&stop_mutex_);
  if (flush_queued) {
    std::vector<Request> flushed = queue_.CloseAndFlush();
    for (Request& request : flushed) {
      metrics_.OnCancelledQueued();
      ServeResult out;
      out.status = util::Status::Cancelled("service shut down while queued");
      out.result.cancelled = true;
      out.queue_seconds = SecondsBetween(request.submit_time, Clock::now());
      out.total_seconds = out.queue_seconds;
      request.promise.set_value(std::move(out));
    }
  } else {
    queue_.CloseAdmission();
  }
  // Joining the pool waits for the worker loops, which exit once the
  // queue is closed and (for drain) fully consumed.
  pool_.reset();
}

void NedService::Drain() { Stop(/*flush_queued=*/false); }

void NedService::Shutdown() { Stop(/*flush_queued=*/true); }

NedServiceSnapshot NedService::Snapshot() const {
  NedServiceSnapshot snapshot;
  snapshot.metrics = metrics_.Snapshot(queue_.size());
  const std::shared_ptr<const kb::KbSnapshot> active = AcquireSnapshot();
  snapshot.active_generation = active->generation();
  if (options_.shared_cache != nullptr) {
    snapshot.has_cache = true;
    snapshot.cache = options_.shared_cache->Snapshot();
  } else if (active->relatedness_cache() != nullptr) {
    snapshot.has_cache = true;
    snapshot.cache = active->relatedness_cache()->Snapshot();
  }
  if (registry_ != nullptr) {
    snapshot.has_registry = true;
    snapshot.registry = registry_->Stats();
  }
  return snapshot;
}

core::DisambiguationStats AggregateCompletedStats(
    const std::vector<ServeResult>& results) {
  core::DisambiguationStats total;
  for (const ServeResult& result : results) {
    if (!result.status.ok()) continue;
    total += result.result.stats;
  }
  return total;
}

}  // namespace aida::serve
